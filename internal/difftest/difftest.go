// Package difftest is the differential harness that proves the fast
// prediction path — compact LR index (internal/lrindex), column-granular
// batching, pooled scratch buffers, measurement memoization — produces
// byte-identical findings to the original map-backed path, which stays
// in the tree as the oracle behind core.Predictor.Reference.
//
// Equivalence here is exact, not approximate: every Finding field must
// match, with float fields compared via math.Float64bits so that even a
// last-ulp drift in LR or θ computation fails the harness. A run trains
// a fresh model on a seeded synthetic corpus, scores an error-injected
// eval set through both predictors, and diffs the ranked outputs; with a
// chaos schedule configured, both sides carry same-seed fault injectors
// so the degraded table set must agree too.
package difftest

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/table"
)

// Config parameterizes one differential run. The zero value (plus a
// Seed) is a sensible small sweep unit.
type Config struct {
	// Seed drives corpus generation; the eval set uses Seed+1 so test
	// tables are disjoint from training tables.
	Seed int64
	// TrainTables is the training corpus size (default 100).
	TrainTables int
	// EvalTables is the error-injected eval set size (default 30).
	EvalTables int
	// ErrorRate is the eval injection rate (default 1.5 per table).
	ErrorRate float64
	// Extra tables are appended to the eval set — the hook for
	// hand-built edge cases (empty columns, NaN numerics, ...).
	Extra []*table.Table
	// Chaos, when non-empty, arms both predictors with fault injectors
	// built from the same ChaosSeed, asserting the fast path degrades
	// on exactly the tables the reference path degrades on.
	Chaos     []faultinject.Rule
	ChaosSeed int64
	// CacheSize is passed to the fast predictor (0 = default budget,
	// negative disables the measurement cache).
	CacheSize int
	// Mutate, when non-nil, adjusts the training/scoring config before
	// use — the hook for sweeping ablations (NoFeaturize,
	// PointEstimates) through the harness.
	Mutate func(*core.Config)
}

// Result reports what a successful (equivalent) run produced, so tests
// can assert the comparison had power.
type Result struct {
	// Findings is the fast path's ranked output (== the reference's).
	Findings []core.Finding
	// Classes counts findings per error class.
	Classes map[core.Class]int
	// IndexLookups is how many measurements the fast path scored
	// through the LR index — zero means the run proved nothing.
	IndexLookups float64
}

// Run trains a model for cfg.Seed, scores the eval set through the
// reference and fast paths, and fails t unless the outputs are
// byte-identical. Without chaos it additionally diffs the single-table
// Detect entry point per eval table (pre-sort dedup order included).
func Run(t testing.TB, cfg Config) Result {
	t.Helper()
	ctx := context.Background()
	ref, fast, eval := setup(t, &cfg)

	want := ref.DetectAll(ctx, eval)
	got := fast.DetectAll(ctx, eval)
	diffFindings(t, fmt.Sprintf("seed %d DetectAll", cfg.Seed), want, got)

	if len(cfg.Chaos) == 0 {
		// The batch comparison alone would pass if both paths dropped
		// everything; Detect has no degradation, so this also pins the
		// per-table dedup order the batch assembly replays.
		for _, tab := range eval {
			diffFindings(t, fmt.Sprintf("seed %d Detect(%q)", cfg.Seed, tab.Name),
				ref.Detect(tab), fast.Detect(tab))
		}
	}

	res := Result{Findings: got, Classes: map[core.Class]int{}}
	for _, f := range got {
		res.Classes[f.Class]++
	}
	res.IndexLookups = counterTotal(t, fast.Obs, "unidetect_predict_index_lookups_total")
	if res.IndexLookups == 0 {
		t.Fatalf("difftest: seed %d: fast path scored nothing through the LR index; the comparison has no power", cfg.Seed)
	}
	return res
}

// setup applies Config defaults, trains the shared model and builds the
// reference and fast predictors plus the eval set — the common front
// half of Run and RunSource.
func setup(t testing.TB, cfg *Config) (ref, fast *core.Predictor, eval []*table.Table) {
	t.Helper()
	if cfg.TrainTables == 0 {
		cfg.TrainTables = 100
	}
	if cfg.EvalTables == 0 {
		cfg.EvalTables = 30
	}
	if cfg.ErrorRate == 0 {
		cfg.ErrorRate = 1.5
	}
	ctx := context.Background()

	bg := corpus.New("difftest", datagen.Generate(datagen.Spec{
		Name: "difftest", Profile: datagen.ProfileWeb, NumTables: cfg.TrainTables,
		AvgRows: 16, AvgCols: 4, Seed: cfg.Seed,
	}).Tables)
	cc := core.DefaultConfig()
	cc.Workers = 4 // exercise both worker pools even on 1-CPU machines
	if cfg.Mutate != nil {
		cfg.Mutate(&cc)
	}
	dets := detectors.All(cc, detectors.Options{})
	model, err := core.Train(ctx, cc, bg, dets)
	if err != nil {
		t.Fatalf("difftest: train seed %d: %v", cfg.Seed, err)
	}

	eval = datagen.Generate(datagen.Spec{
		Name: "difftest-eval", Profile: datagen.ProfileWeb, NumTables: cfg.EvalTables,
		AvgRows: 20, AvgCols: 4, ErrorRate: cfg.ErrorRate, Seed: cfg.Seed + 1,
	}).Tables
	eval = append(eval, cfg.Extra...)

	env := &core.Env{Index: bg.Index()}
	ref = core.NewPredictor(model, dets, env)
	ref.Reference = true
	fast = core.NewPredictor(model, dets, env)
	fast.CacheSize = cfg.CacheSize
	fast.Obs = obs.NewRegistry()
	if len(cfg.Chaos) > 0 {
		ref.Inject = faultinject.New(cfg.ChaosSeed, cfg.Chaos...)
		fast.Inject = faultinject.New(cfg.ChaosSeed, cfg.Chaos...)
	}
	return ref, fast, eval
}

// ChunkSizes is the streaming sweep RunSource drives each eval table
// through: row-at-a-time, a prime stride, a coarse chunk, and the whole
// table as a single chunk (the in-memory anchor).
var ChunkSizes = []int{1, 7, 64, colstore.WholeTable}

// RunSource proves the chunked streaming scan: every eval table is
// streamed through core.Predictor.DetectSource on both the reference
// and the fast path at each ChunkSizes entry, and the two paths must
// agree byte-for-byte at every size. Without chaos, the whole-table
// stream must additionally be byte-identical to the in-memory Detect on
// both paths — pinning that the driver degenerates to the ordinary scan
// when chunking is off. With a chaos schedule, same-seed injectors gate
// every chunk on both paths, which must degrade the same chunks (the
// sweep still runs; per-size outputs then legitimately differ, path
// equivalence must not).
func RunSource(t testing.TB, cfg Config) Result {
	t.Helper()
	ctx := context.Background()
	ref, fast, eval := setup(t, &cfg)

	res := Result{Classes: map[core.Class]int{}}
	for _, tab := range eval {
		for _, rows := range ChunkSizes {
			what := fmt.Sprintf("seed %d DetectSource(%q, chunk=%d)", cfg.Seed, tab.Name, rows)
			want, err := ref.DetectSource(ctx, colstore.NewSliceSource(tab, colstore.Options{ChunkRows: rows}))
			if err != nil {
				t.Fatalf("difftest: %s: reference: %v", what, err)
			}
			got, err := fast.DetectSource(ctx, colstore.NewSliceSource(tab, colstore.Options{ChunkRows: rows}))
			if err != nil {
				t.Fatalf("difftest: %s: fast: %v", what, err)
			}
			diffFindings(t, what, want, got)
			if rows == colstore.WholeTable {
				if len(cfg.Chaos) == 0 {
					diffFindings(t, what+" vs reference Detect", ref.Detect(tab), want)
					diffFindings(t, what+" vs fast Detect", fast.Detect(tab), got)
				}
				res.Findings = append(res.Findings, got...)
				for _, f := range got {
					res.Classes[f.Class]++
				}
			}
		}
	}

	res.IndexLookups = counterTotal(t, fast.Obs, "unidetect_predict_index_lookups_total")
	if res.IndexLookups == 0 {
		t.Fatalf("difftest: seed %d: streaming fast path scored nothing through the LR index; the comparison has no power", cfg.Seed)
	}
	if chunks := counterTotal(t, fast.Obs, "unidetect_scan_chunks_total"); chunks == 0 {
		t.Fatalf("difftest: seed %d: no chunks streamed", cfg.Seed)
	}
	if len(cfg.Chaos) > 0 {
		if degraded := counterTotal(t, fast.Obs, "unidetect_scan_degraded_chunks_total"); degraded == 0 {
			t.Fatalf("difftest: seed %d: chaos schedule degraded no chunks; the chaos sweep has no power", cfg.Seed)
		}
	}
	return res
}

// diffFindings fails t with a field-precise message on the first
// mismatch between the oracle's findings and the fast path's.
func diffFindings(t testing.TB, what string, want, got []core.Finding) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("difftest: %s: reference produced %d findings, fast path %d", what, len(want), len(got))
	}
	for i := range want {
		if d := findingDiff(want[i], got[i]); d != "" {
			t.Fatalf("difftest: %s: finding %d differs: %s\nreference: %+v\nfast:      %+v",
				what, i, d, want[i], got[i])
		}
	}
}

// findingDiff returns "" when a and b are byte-identical, else the name
// of the first differing field. Floats compare by bits: NaN == NaN,
// +0 != -0 — stricter than ==.
func findingDiff(a, b core.Finding) string {
	switch {
	case a.Class != b.Class:
		return "Class"
	case a.Table != b.Table:
		return "Table"
	case a.Column != b.Column:
		return "Column"
	case !equalInts(a.Rows, b.Rows):
		return "Rows"
	case !equalStrings(a.Values, b.Values):
		return "Values"
	case math.Float64bits(a.LR) != math.Float64bits(b.LR):
		return fmt.Sprintf("LR bits (%x vs %x)", math.Float64bits(a.LR), math.Float64bits(b.LR))
	case math.Float64bits(a.Theta1) != math.Float64bits(b.Theta1):
		return "Theta1 bits"
	case math.Float64bits(a.Theta2) != math.Float64bits(b.Theta2):
		return "Theta2 bits"
	case a.Support != b.Support:
		return "Support"
	case a.Detail != b.Detail:
		return "Detail"
	}
	return ""
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// counterTotal sums every sample of one counter family from the
// registry's own text exposition, validating the format on the way.
func counterTotal(t testing.TB, reg *obs.Registry, name string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePromText(&sb); err != nil {
		t.Fatalf("difftest: write exposition: %v", err)
	}
	fams, err := obs.ParseProm(sb.String())
	if err != nil {
		t.Fatalf("difftest: invalid exposition: %v", err)
	}
	fam := fams[name]
	if fam == nil {
		return 0
	}
	var total float64
	for _, s := range fam.Samples {
		total += s.Value
	}
	return total
}
