package difftest_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/difftest"
	"github.com/unidetect/unidetect/internal/mapreduce"
	"github.com/unidetect/unidetect/internal/testkit"
)

// TestMergeEquivalence is the merge tier's core claim: for every seed
// in the sweep and every shard count, merging independently trained
// partition models is byte-identical to one monolithic training pass.
func TestMergeEquivalence(t *testing.T) {
	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := difftest.RunMerge(t, difftest.MergeConfig{Seed: seed})
			if res.ModelBytes == 0 {
				t.Fatal("merge sweep compared empty serializations")
			}
		})
	}
}

// TestMergeEquivalenceChaos re-proves the equivalence with a transient
// fault schedule armed on every sharded run: retries must absorb the
// faults and the merged bytes must still match the clean monolith.
func TestMergeEquivalenceChaos(t *testing.T) {
	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := difftest.RunMerge(t, difftest.MergeConfig{
				Seed:      seed,
				Shards:    []int{2, 4, 7},
				Chaos:     testkit.TrainChaos(0.04),
				ChaosSeed: seed,
				Retry: mapreduce.RetryPolicy{
					MaxAttempts: 6, BaseDelay: time.Millisecond,
					MaxDelay: 8 * time.Millisecond, Jitter: 0.5,
				},
			})
			if res.Fires == 0 {
				t.Fatal("chaos sweep fired no faults")
			}
		})
	}
}

// TestMergeAlgebra pins the algebraic laws core.Merge's contract
// promises: associativity, commutativity, and NewEmptyModel as the
// identity element — all stated in serialized bytes, the same medium
// the equivalence tier uses.
func TestMergeAlgebra(t *testing.T) {
	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx := context.Background()
			bg := corpus.New("merge-algebra", datagen.Generate(datagen.Spec{
				Name: "merge-algebra", Profile: datagen.ProfileWeb, NumTables: 36,
				AvgRows: 16, AvgCols: 4, Seed: seed,
			}).Tables)
			cc := core.DefaultConfig()
			cc.Workers = 4
			dets := detectors.All(cc, detectors.Options{})
			parts := bg.Partition(3)
			models := make([]*core.Model, len(parts))
			for i, p := range parts {
				m, err := core.Train(ctx, cc, p, dets)
				if err != nil {
					t.Fatalf("train partition %d: %v", i, err)
				}
				models[i] = m
			}
			a, b, c := models[0], models[1], models[2]
			save := func(m *core.Model, err error) []byte {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := m.Save(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			merge2 := func(x, y *core.Model) *core.Model {
				t.Helper()
				m, err := core.Merge(x, y)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}

			leftAssoc := save(core.Merge(merge2(a, b), c))
			rightAssoc := save(core.Merge(a, merge2(b, c)))
			if !bytes.Equal(leftAssoc, rightAssoc) {
				t.Error("Merge is not associative: (a+b)+c != a+(b+c)")
			}
			flat := save(core.Merge(a, b, c))
			if !bytes.Equal(flat, leftAssoc) {
				t.Error("variadic Merge(a, b, c) differs from pairwise folding")
			}
			reordered := save(core.Merge(c, a, b))
			if !bytes.Equal(reordered, flat) {
				t.Error("Merge is not commutative: (c+a+b) != (a+b+c)")
			}
			empty := core.NewEmptyModel(cc, dets)
			withIdentity := save(core.Merge(a, empty, b, empty, c))
			if !bytes.Equal(withIdentity, flat) {
				t.Error("NewEmptyModel is not a Merge identity")
			}
		})
	}
}

// TestIncrementalEqualsScratch sweeps TrainIncremental's scratch
// equivalence across the chaos seed set.
func TestIncrementalEqualsScratch(t *testing.T) {
	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			difftest.RunIncremental(t, seed, 60, 42)
		})
	}
}
