package difftest

import (
	"bytes"
	"context"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/mapreduce"
)

// MergeConfig parameterizes one merge-equivalence run: train a
// monolithic model, retrain the same corpus split into each shard
// count, and require the merged shard models to serialize to the exact
// bytes of the monolith.
type MergeConfig struct {
	// Seed drives corpus generation.
	Seed int64
	// TrainTables is the training corpus size (default 60).
	TrainTables int
	// Shards is the list of shard counts to sweep (default 1, 2, 4, 7).
	Shards []int
	// Chaos, when non-empty, arms every sharded run with a fault
	// injector built from ChaosSeed — the equivalence must hold through
	// retried transient faults, not just on the happy path.
	Chaos     []faultinject.Rule
	ChaosSeed int64
	// Retry is the retry policy for chaos runs (required when Chaos is
	// set, so injected faults are absorbed rather than fatal).
	Retry mapreduce.RetryPolicy
	// Mutate, when non-nil, adjusts the training config before use.
	Mutate func(*core.Config)
}

// MergeResult reports what a successful merge-equivalence run proved,
// so sweeps can assert the comparison had power.
type MergeResult struct {
	// ModelBytes is the serialized size of the monolithic model.
	ModelBytes int
	// Buckets is the total bucket count across classes — zero buckets
	// would make byte-equality vacuous.
	Buckets int
	// Fires is how many faults the chaos schedule actually injected
	// across the sharded runs (0 without chaos).
	Fires int
}

// RunMerge is the merge tier's sweep unit: it proves that
// Merge(train(P1), ..., train(Pk)) is byte-identical to a monolithic
// TrainWith over the whole corpus, for every shard count in the sweep.
func RunMerge(t testing.TB, cfg MergeConfig) MergeResult {
	t.Helper()
	if cfg.TrainTables == 0 {
		cfg.TrainTables = 60
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 2, 4, 7}
	}
	ctx := context.Background()

	bg := corpus.New("difftest-merge", datagen.Generate(datagen.Spec{
		Name: "difftest-merge", Profile: datagen.ProfileWeb, NumTables: cfg.TrainTables,
		AvgRows: 16, AvgCols: 4, Seed: cfg.Seed,
	}).Tables)
	cc := core.DefaultConfig()
	cc.Workers = 4
	if cfg.Mutate != nil {
		cfg.Mutate(&cc)
	}
	dets := detectors.All(cc, detectors.Options{})

	mono, err := core.Train(ctx, cc, bg, dets)
	if err != nil {
		t.Fatalf("difftest: merge seed %d: monolithic train: %v", cfg.Seed, err)
	}
	want := modelBytes(t, mono)
	res := MergeResult{ModelBytes: len(want)}
	for _, cm := range mono.Classes {
		res.Buckets += len(cm.Buckets)
	}
	if res.Buckets == 0 {
		t.Fatalf("difftest: merge seed %d: monolithic model has no buckets; byte-equality would be vacuous", cfg.Seed)
	}

	for _, k := range cfg.Shards {
		opts := core.ShardedOptions{Shards: k}
		var inj *faultinject.Injector
		if len(cfg.Chaos) > 0 {
			inj = faultinject.New(cfg.ChaosSeed, cfg.Chaos...)
			opts.FT = mapreduce.FT{Inject: inj, Seed: cfg.ChaosSeed, Retry: cfg.Retry}
		}
		sharded, err := core.TrainSharded(ctx, cc, opts, bg, dets)
		if err != nil {
			t.Fatalf("difftest: merge seed %d shards=%d: %v", cfg.Seed, k, err)
		}
		if !bytes.Equal(modelBytes(t, sharded), want) {
			t.Fatalf("difftest: merge seed %d shards=%d: merged shard models differ from the monolithic model", cfg.Seed, k)
		}
		if inj != nil {
			res.Fires += inj.Fires()
		}
	}
	if len(cfg.Chaos) > 0 && res.Fires == 0 {
		t.Fatalf("difftest: merge seed %d: chaos schedule never fired; the fault-tolerant equivalence has no power", cfg.Seed)
	}
	return res
}

// RunIncremental proves core.TrainIncremental's contract: folding a
// delta partition into a base model lands on the exact bytes of
// retraining from scratch, provided base and delta share one frozen
// token index spanning the union.
func RunIncremental(t testing.TB, seed int64, totalTables, baseTables int) {
	t.Helper()
	if totalTables == 0 {
		totalTables = 60
	}
	if baseTables == 0 || baseTables >= totalTables {
		baseTables = totalTables * 2 / 3
	}
	ctx := context.Background()

	all := corpus.New("difftest-incr", datagen.Generate(datagen.Spec{
		Name: "difftest-incr", Profile: datagen.ProfileWeb, NumTables: totalTables,
		AvgRows: 16, AvgCols: 4, Seed: seed,
	}).Tables)
	ix := all.Index()
	baseC := corpus.WithSharedIndex("difftest-incr/base", all.Tables[:baseTables], ix)
	deltaC := corpus.WithSharedIndex("difftest-incr/delta", all.Tables[baseTables:], ix)

	cc := core.DefaultConfig()
	cc.Workers = 4
	dets := detectors.All(cc, detectors.Options{})

	scratch, err := core.Train(ctx, cc, all, dets)
	if err != nil {
		t.Fatalf("difftest: incr seed %d: scratch train: %v", seed, err)
	}
	base, err := core.Train(ctx, cc, baseC, dets)
	if err != nil {
		t.Fatalf("difftest: incr seed %d: base train: %v", seed, err)
	}
	incr, err := core.TrainIncremental(ctx, cc, core.TrainOptions{}, base, deltaC, dets)
	if err != nil {
		t.Fatalf("difftest: incr seed %d: incremental train: %v", seed, err)
	}
	if !bytes.Equal(modelBytes(t, incr), modelBytes(t, scratch)) {
		t.Fatalf("difftest: incr seed %d: incremental retrain differs from retraining from scratch", seed)
	}
}

// modelBytes serializes m through its canonical wire format — the
// medium the merge tier's equality claims are stated in.
func modelBytes(t testing.TB, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("difftest: serialize model: %v", err)
	}
	return buf.Bytes()
}
