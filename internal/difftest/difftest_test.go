package difftest_test

import (
	"fmt"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/difftest"
	"github.com/unidetect/unidetect/internal/table"
	"github.com/unidetect/unidetect/internal/testkit"
)

// TestSeedSweep is the harness's core claim: across independently
// generated corpora the fast path is byte-identical to the reference,
// and the comparison exercises several error classes (a sweep that only
// ever produced, say, uniqueness findings would leave the other
// detectors' scoring unproven).
func TestSeedSweep(t *testing.T) {
	classes := map[core.Class]bool{}
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := difftest.Run(t, difftest.Config{Seed: seed})
			if len(res.Findings) == 0 {
				t.Fatalf("seed %d: no findings; the equivalence check has no power", seed)
			}
			for cls := range res.Classes {
				classes[cls] = true
			}
		})
	}
	if len(classes) < 3 {
		t.Fatalf("sweep exercised only %d error classes (%v); want >= 3", len(classes), classes)
	}
}

// TestAblations runs the sweep unit under the paper's §2.2.2 config
// ablations, which change the model's lookup structure (global-only
// grids, point-estimate LRs) and hence stress different index layers.
func TestAblations(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"no-featurize", func(c *core.Config) { c.NoFeaturize = true }},
		{"point-estimates", func(c *core.Config) { c.PointEstimates = true }},
		{"zero-bucket-support", func(c *core.Config) { c.MinBucketSupport = 0 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			difftest.Run(t, difftest.Config{Seed: 11, Mutate: tc.mutate})
		})
	}
}

// TestCacheConfigs holds equivalence across measurement-cache budgets:
// disabled entirely, and a 2-entry cache that evicts on nearly every
// column (stressing the LRU against the pure-recompute path).
func TestCacheConfigs(t *testing.T) {
	for _, tc := range []struct {
		name string
		size int
	}{
		{"disabled", -1},
		{"tiny", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			difftest.Run(t, difftest.Config{Seed: 7, CacheSize: tc.size})
		})
	}
}

// TestEdgeTables appends hand-built degenerate tables to the eval set:
// empty columns, single-row and constant columns, and NaN/Inf-bearing
// numerics whose float semantics (NaN != NaN) are exactly where a
// rebuilt scoring path could drift.
func TestEdgeTables(t *testing.T) {
	mk := func(name string, cols ...*table.Column) *table.Table {
		tab, err := table.New(name, cols...)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	extra := []*table.Table{
		mk("edge/no-columns"),
		mk("edge/empty-values",
			table.NewColumn("a", []string{"", "", "", "", "", "", "", ""}),
			table.NewColumn("b", []string{"x", "", "y", "", "z", "", "w", ""})),
		mk("edge/single-row", table.NewColumn("only", []string{"v"})),
		mk("edge/constant",
			table.NewColumn("same", []string{"k", "k", "k", "k", "k", "k", "k", "k", "k", "k"})),
		mk("edge/nan-numerics",
			table.NewColumn("x", []string{"NaN", "nan", "1.5", "2.5", "NaN", "3.5", "1e309", "-1e309", "4.5", "5.5"}),
			table.NewColumn("y", []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "1000000"})),
		mk("edge/near-duplicates",
			table.NewColumn("s", []string{"alpha", "alpha", "alpah", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"})),
	}
	res := difftest.Run(t, difftest.Config{Seed: 3, Extra: extra})
	if len(res.Findings) == 0 {
		t.Fatal("no findings with edge tables appended")
	}
}

// TestSourceSweep drives the streaming-scan sweep: per eval table and
// chunk size, the chunked fast driver must match the chunked reference
// driver byte-for-byte, and the whole-table stream must match the
// in-memory Detect — with several error classes exercised so all
// detector kinds (per-chunk column scoring and the end-of-stream sketch
// pass) contribute evidence.
func TestSourceSweep(t *testing.T) {
	classes := map[core.Class]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := difftest.RunSource(t, difftest.Config{Seed: seed})
			if len(res.Findings) == 0 {
				t.Fatalf("seed %d: no streaming findings; the equivalence check has no power", seed)
			}
			for cls := range res.Classes {
				classes[cls] = true
			}
		})
	}
	if len(classes) < 3 {
		t.Fatalf("source sweep exercised only %d error classes (%v); want >= 3", len(classes), classes)
	}
}

// TestSourceEdgeTables streams the degenerate tables of TestEdgeTables
// through the chunk sweep: zero-row, single-row and empty-cell tables
// are exactly where a chunked driver could mishandle schema-only
// streams or row rebasing.
func TestSourceEdgeTables(t *testing.T) {
	mk := func(name string, cols ...*table.Column) *table.Table {
		tab, err := table.New(name, cols...)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	extra := []*table.Table{
		mk("edge/empty-values",
			table.NewColumn("a", []string{"", "", "", "", "", "", "", ""}),
			table.NewColumn("b", []string{"x", "", "y", "", "z", "", "w", ""})),
		mk("edge/zero-rows", table.NewColumn("empty", nil)),
		mk("edge/single-row", table.NewColumn("only", []string{"v"})),
		mk("edge/near-duplicates",
			table.NewColumn("s", []string{"alpha", "alpha", "alpah", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"})),
	}
	difftest.RunSource(t, difftest.Config{Seed: 3, EvalTables: 8, Extra: extra})
}

// TestSourceChaos replays a transient scan chaos schedule through
// same-seed injectors on both streaming paths: the fast driver must
// degrade exactly the chunks the reference driver degrades, at every
// chunk size, and score the surviving chunks identically.
func TestSourceChaos(t *testing.T) {
	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			difftest.RunSource(t, difftest.Config{
				Seed:       21,
				EvalTables: 10,
				Chaos:      testkit.ScanChaos(0.2),
				ChaosSeed:  seed,
			})
		})
	}
}

// TestChaosSchedule replays the predict chaos schedule through
// same-seed injectors on both paths: the fast pipeline must degrade on
// exactly the tables the reference pipeline degrades on, and score the
// survivors identically.
func TestChaosSchedule(t *testing.T) {
	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := difftest.Run(t, difftest.Config{
				Seed:      21,
				Chaos:     testkit.PredictChaos(0.3),
				ChaosSeed: seed,
			})
			if len(res.Findings) == 0 {
				t.Fatalf("chaos seed %d dropped every finding; schedule too aggressive for equivalence evidence", seed)
			}
		})
	}
}
