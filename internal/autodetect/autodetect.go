// Package autodetect implements the pattern-incompatibility detector of
// Auto-Detect [50], which Appendix C shows is an instance of Uni-Detect's
// LR test: values are generalized into patterns ("2001-Jan-01" →
// "dddd-lll-dd"), the corpus supplies per-pattern and co-occurrence
// counts, and a column mixing two patterns whose point-wise mutual
// information is strongly negative is flagged as incompatible.
package autodetect

import (
	"math"
	"sort"
	"strings"

	"github.com/unidetect/unidetect/internal/stats"
	"github.com/unidetect/unidetect/internal/table"
)

// Generalize maps a value to its character-class pattern: digits to 'd',
// letters to 'l', whitespace to a single space, other runes kept verbatim
// (the finer of Auto-Detect's generalization levels).
func Generalize(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	prevSpace := false
	for _, r := range v {
		switch {
		case r >= '0' && r <= '9':
			b.WriteByte('d')
			prevSpace = false
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
			b.WriteByte('l')
			prevSpace = false
		case r == ' ' || r == '\t':
			if !prevSpace {
				b.WriteByte(' ')
			}
			prevSpace = true
		default:
			b.WriteRune(r)
			prevSpace = false
		}
	}
	return b.String()
}

// GeneralizeCoarse collapses runs: "dddd-lll-dd" → "d-l-d" (the coarser
// generalization level, robust to value-length variation).
func GeneralizeCoarse(v string) string {
	fine := Generalize(v)
	var b strings.Builder
	b.Grow(len(fine))
	var prev rune = -1
	for _, r := range fine {
		if (r == 'd' || r == 'l') && r == prev {
			continue
		}
		b.WriteRune(r)
		prev = r
	}
	return b.String()
}

// Model holds corpus pattern statistics.
type Model struct {
	// N is the number of columns scanned.
	N int64
	// Single counts columns containing each (coarse) pattern.
	Single map[string]int64
	// Pair counts columns containing both patterns of each unordered
	// pair (keys are "a\x00b" with a < b).
	Pair map[string]int64
	// MaxPatternsPerColumn bounds the per-column distinct pattern set;
	// columns with more are skipped as pattern-free text.
	MaxPatternsPerColumn int
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

// Train scans the corpus tables and accumulates pattern statistics.
func Train(tables []*table.Table) *Model {
	m := &Model{
		Single:               make(map[string]int64),
		Pair:                 make(map[string]int64),
		MaxPatternsPerColumn: 8,
	}
	for _, t := range tables {
		for _, c := range t.Columns {
			pats, ok := columnPatterns(c, m.MaxPatternsPerColumn)
			if !ok {
				continue
			}
			m.N++
			for i, p := range pats {
				m.Single[p]++
				for _, q := range pats[i+1:] {
					m.Pair[pairKey(p, q)]++
				}
			}
		}
	}
	return m
}

// columnPatterns returns the sorted distinct coarse patterns of a column,
// or ok=false when the column is empty or too pattern-diverse to be
// meaningful.
func columnPatterns(c *table.Column, maxPatterns int) ([]string, bool) {
	set := map[string]bool{}
	for _, v := range c.Values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		set[GeneralizeCoarse(v)] = true
		if len(set) > maxPatterns {
			return nil, false
		}
	}
	if len(set) == 0 {
		return nil, false
	}
	pats := make([]string, 0, len(set))
	for p := range set {
		pats = append(pats, p)
	}
	sort.Strings(pats)
	return pats, true
}

// Finding is one detected pattern incompatibility.
type Finding struct {
	Column string
	// PatternA is the majority pattern, PatternB the minority one.
	PatternA, PatternB string
	// Rows holds the rows bearing the minority pattern.
	Rows []int
	// Values holds the minority values.
	Values []string
	// PMI is log( P(a,b) / (P(a)P(b)) ); strongly negative means the
	// patterns almost never legitimately share a column.
	PMI float64
	// LR is exp(PMI) with add-one smoothing — directly comparable to the
	// other detectors' likelihood ratios (Appendix C).
	LR float64
}

// Detect flags pattern-incompatible values in the table's columns: for
// each column pattern pair with LR below alpha, the minority-pattern rows
// are reported.
func (m *Model) Detect(t *table.Table, alpha float64) []Finding {
	var out []Finding
	for _, c := range t.Columns {
		pats, ok := columnPatterns(c, m.MaxPatternsPerColumn)
		if !ok || len(pats) < 2 {
			continue
		}
		// Row sets per pattern.
		rowsByPat := map[string][]int{}
		for i, v := range c.Values {
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			p := GeneralizeCoarse(v)
			rowsByPat[p] = append(rowsByPat[p], i)
		}
		for i, a := range pats {
			for _, b := range pats[i+1:] {
				lr, pmi := m.score(a, b)
				if lr >= alpha {
					continue
				}
				maj, min := a, b
				if len(rowsByPat[a]) < len(rowsByPat[b]) {
					maj, min = b, a
				}
				f := Finding{
					Column:   c.Name,
					PatternA: maj,
					PatternB: min,
					Rows:     rowsByPat[min],
					PMI:      pmi,
					LR:       lr,
				}
				for _, r := range f.Rows {
					f.Values = append(f.Values, c.Values[r])
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !stats.SameFloat(out[i].LR, out[j].LR) {
			return out[i].LR < out[j].LR
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// score returns the significance of the pair's negative correlation and
// its PMI. Under H0 (patterns co-occur by chance, Appendix C) the
// co-occurrence count is approximately Poisson with mean λ = n_a·n_b/N;
// the returned score is P(X <= n_ab | λ) — the probability of seeing so
// few co-occurrences by chance. A tiny score means the patterns are
// genuinely incompatible, and the score converges as the corpus grows
// (unlike a raw smoothed ratio, which saturates when λ is small).
func (m *Model) score(a, b string) (sig, pmi float64) {
	if m.N == 0 {
		return 1, 0
	}
	na := float64(m.Single[a])
	nb := float64(m.Single[b])
	nab := float64(m.Pair[pairKey(a, b)])
	n := float64(m.N)
	lambda := na * nb / n
	sig = poissonCDF(nab, lambda)
	pJoint := (nab + 0.5) / (n + 1)
	pIndep := ((na + 0.5) / (n + 1)) * ((nb + 0.5) / (n + 1))
	return sig, math.Log(pJoint / pIndep)
}

// poissonCDF returns P(X <= k) for X ~ Poisson(lambda).
func poissonCDF(k, lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	term := math.Exp(-lambda)
	sum := term
	for i := 1.0; i <= k; i++ {
		term *= lambda / i
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}
