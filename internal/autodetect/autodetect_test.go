package autodetect

import (
	"fmt"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func TestGeneralize(t *testing.T) {
	cases := map[string]string{
		"2001-Jan-01":  "dddd-lll-dd",
		"2001-01-01":   "dddd-dd-dd",
		"abc  def":     "lll lll",
		"KV214-310B":   "llddd-dddl",
		"":             "",
		"3.14":         "d.dd",
		"hello, world": "lllll, lllll",
	}
	for in, want := range cases {
		if got := Generalize(in); got != want {
			t.Errorf("Generalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGeneralizeCoarse(t *testing.T) {
	cases := map[string]string{
		"2001-Jan-01": "d-l-d",
		"2001-01-01":  "d-d-d",
		"abc def":     "l l",
		"12345":       "d",
		"a1b2":        "ldld",
	}
	for in, want := range cases {
		if got := GeneralizeCoarse(in); got != want {
			t.Errorf("GeneralizeCoarse(%q) = %q, want %q", in, got, want)
		}
	}
}

// buildCorpus creates nDate columns of "d-l-d" dates, nISO columns of
// "d-d-d" dates, and nMixedText columns containing both word and
// word-word patterns (compatible).
func buildCorpus(nDate, nISO, nText int) []*table.Table {
	var tables []*table.Table
	for i := 0; i < nDate; i++ {
		tables = append(tables, table.MustNew(fmt.Sprintf("date%d", i),
			table.NewColumn("c", []string{"2001-Jan-01", "2002-Feb-02", "2003-Mar-03"})))
	}
	for i := 0; i < nISO; i++ {
		tables = append(tables, table.MustNew(fmt.Sprintf("iso%d", i),
			table.NewColumn("c", []string{"2001-01-01", "2002-02-02", "2003-03-03"})))
	}
	for i := 0; i < nText; i++ {
		tables = append(tables, table.MustNew(fmt.Sprintf("text%d", i),
			table.NewColumn("c", []string{"alpha", "beta gamma", "delta"})))
	}
	return tables
}

func TestTrainCounts(t *testing.T) {
	m := Train(buildCorpus(10, 5, 3))
	if m.N != 18 {
		t.Errorf("N = %d", m.N)
	}
	if m.Single["d-l-d"] != 10 {
		t.Errorf("Single[d-l-d] = %d", m.Single["d-l-d"])
	}
	if m.Single["d-d-d"] != 5 {
		t.Errorf("Single[d-d-d] = %d", m.Single["d-d-d"])
	}
	if m.Pair[pairKey("d-l-d", "d-d-d")] != 0 {
		t.Error("date formats never co-occur in the corpus")
	}
	if m.Pair[pairKey("l", "l l")] != 3 {
		t.Errorf("Pair[l, l l] = %d", m.Pair[pairKey("l", "l l")])
	}
}

func TestDetectIncompatibleDateFormats(t *testing.T) {
	m := Train(buildCorpus(200, 100, 100))
	// The Auto-Detect running example: a column mixing 2001-Jan-01 with
	// 2001-01-01.
	mixed := table.MustNew("mixed", table.NewColumn("When",
		[]string{"2001-Jan-01", "2002-Feb-02", "2003-Mar-03", "2004-04-04"}))
	fs := m.Detect(mixed, 0.1)
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	f := fs[0]
	if f.PatternB != "d-d-d" || f.PatternA != "d-l-d" {
		t.Errorf("patterns = %q vs %q", f.PatternA, f.PatternB)
	}
	if len(f.Rows) != 1 || f.Rows[0] != 3 {
		t.Errorf("Rows = %v", f.Rows)
	}
	if f.Values[0] != "2004-04-04" {
		t.Errorf("Values = %v", f.Values)
	}
	if f.PMI >= 0 {
		t.Errorf("PMI = %v, want negative", f.PMI)
	}
	if f.LR >= 0.1 {
		t.Errorf("LR = %v", f.LR)
	}
}

func TestDetectCompatiblePatternsNotFlagged(t *testing.T) {
	m := Train(buildCorpus(200, 100, 100))
	text := table.MustNew("text", table.NewColumn("Words",
		[]string{"alpha", "beta gamma", "delta", "eps zeta"}))
	if fs := m.Detect(text, 0.1); len(fs) != 0 {
		t.Errorf("compatible word patterns flagged: %v", fs)
	}
}

func TestDetectSkipsDiverseColumns(t *testing.T) {
	m := Train(buildCorpus(50, 50, 50))
	vals := make([]string, 20)
	for i := range vals {
		vals[i] = fmt.Sprintf("%s-%d!%d?%d", "x", i, i*7, i*13)
	}
	diverse := table.MustNew("d", table.NewColumn("c", vals))
	// Over MaxPatternsPerColumn distinct patterns: treated as free text.
	if fs := m.Detect(diverse, 0.5); len(fs) != 0 {
		t.Errorf("diverse column flagged: %v", fs)
	}
}

func TestPoissonCDF(t *testing.T) {
	cases := []struct {
		k, lambda, want, tol float64
	}{
		{0, 1, 0.3679, 0.001},
		{1, 1, 0.7358, 0.001},
		{2, 1, 0.9197, 0.001},
		{0, 5, 0.0067, 0.001},
		{5, 5, 0.6160, 0.001},
		{0, 0, 1, 0},
		{10, 0.0001, 1, 0.001},
	}
	for _, c := range cases {
		got := poissonCDF(c.k, c.lambda)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("poissonCDF(%v,%v) = %v, want %v", c.k, c.lambda, got, c.want)
		}
	}
	// Monotone in k.
	prev := 0.0
	for k := 0.0; k <= 20; k++ {
		p := poissonCDF(k, 7)
		if p < prev {
			t.Fatalf("poissonCDF not monotone at k=%v", k)
		}
		prev = p
	}
}

func TestScoreEmptyModel(t *testing.T) {
	m := &Model{Single: map[string]int64{}, Pair: map[string]int64{}, MaxPatternsPerColumn: 8}
	lr, pmi := m.score("a", "b")
	if lr != 1 || pmi != 0 {
		t.Errorf("empty model score = %v, %v", lr, pmi)
	}
}

func TestScoreCompatiblePatternsNotSignificant(t *testing.T) {
	m := Train(buildCorpus(0, 0, 50))
	// "l" and "l l" co-occur in every column: observed co-occurrence is
	// at (above) the independence expectation, so the Poisson left-tail
	// significance is ~0.5 or more — never significant.
	sig, pmi := m.score("l", "l l")
	if sig < 0.4 {
		t.Errorf("always-co-occurring patterns: sig = %v, want ~>=0.5", sig)
	}
	if pmi < 0 {
		t.Errorf("PMI = %v, want >= 0 for positively correlated patterns", pmi)
	}
}
