// Package testkit is the chaos harness backing the fault-injection test
// suite: deterministic fault schedules for training and serving, a
// virtual clock so backoff schedules run in microseconds, golden
// transcript comparison, and failure-artifact dumps for CI.
//
// It is imported only from _test.go files; nothing in the production
// binaries depends on it.
package testkit

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/faultinject"
)

var (
	chaosSeeds = flag.String("chaos.seeds", "1,7,42",
		"comma-separated injector seeds the chaos tests iterate over")
	updateGolden = flag.Bool("chaos.update", false,
		"rewrite golden transcript files instead of comparing")
)

// ErrTransient is the error the built-in schedules inject for faults a
// retry is expected to absorb.
var ErrTransient = errors.New("chaos: transient fault")

// Seeds returns the injector seeds under test, from -chaos.seeds.
func Seeds(t testing.TB) []int64 {
	t.Helper()
	var out []int64
	for _, part := range strings.Split(*chaosSeeds, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			t.Fatalf("testkit: bad -chaos.seeds entry %q: %v", part, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		t.Fatal("testkit: -chaos.seeds is empty")
	}
	return out
}

// TrainChaos is a transient-fault schedule for the training path: every
// map shard's first attempt fails, reduce keys fail or panic with
// probability p, and a slice of map attempts are delayed. Every fault is
// transient — per-site consecutive failures are rare enough at p ≤ 0.05
// that a retry policy with ≥ 6 attempts absorbs the whole schedule, so a
// fail-fast job under this schedule must still complete (and, being
// loss-free, must reproduce the fault-free model byte for byte).
func TrainChaos(p float64) []faultinject.Rule {
	return []faultinject.Rule{
		{Site: "mapreduce/map/*", Hits: []int{1}, Fault: faultinject.Fault{Err: ErrTransient}},
		{Site: "mapreduce/reduce/*", P: p, Fault: faultinject.Fault{Err: ErrTransient}},
		{Site: "mapreduce/reduce/*", P: p / 4, Fault: faultinject.Fault{Panic: "chaos: injected reduce panic"}},
		{Site: "mapreduce/map/*", P: p, Fault: faultinject.Fault{Delay: time.Millisecond}},
	}
}

// TrainKill is a fail-fast-lethal schedule: reduce keys fail with
// probability p on every attempt ordinal, so under a fail-fast policy
// with bounded retries the job dies mid-reduce — the setup for
// checkpoint/resume tests.
func TrainKill(p float64) []faultinject.Rule {
	return []faultinject.Rule{
		{Site: "mapreduce/reduce/*", P: p, Fault: faultinject.Fault{Err: errors.New("chaos: lethal reduce fault")}},
	}
}

// DeadShard is a permanent fault on one map shard: every attempt fails,
// so only a skip-and-log policy survives it.
func DeadShard(shard int) faultinject.Rule {
	return faultinject.Rule{
		Site:  "mapreduce/map/shard=" + strconv.Itoa(shard),
		P:     1,
		Fault: faultinject.Fault{Err: errors.New("chaos: dead shard")},
	}
}

// PredictChaos is a fault schedule for the batch predict path: tables
// fail or panic with probability p and p/2. It deliberately has no
// delay-only rule, so every transcript event corresponds to exactly one
// gracefully degraded table — the invariant the degradation test pins.
func PredictChaos(p float64) []faultinject.Rule {
	return []faultinject.Rule{
		{Site: "core/predict/*", P: p, Fault: faultinject.Fault{Err: ErrTransient}},
		{Site: "core/predict/*", P: p / 2, Fault: faultinject.Fault{Panic: "chaos: injected predict panic"}},
	}
}

// ScanChaos is a fault schedule for the streaming scan path: chunks
// fail or panic with probability p and p/2. Like PredictChaos it has no
// delay-only rule, so every transcript event is exactly one gracefully
// degraded chunk of a DetectSource stream.
func ScanChaos(p float64) []faultinject.Rule {
	return []faultinject.Rule{
		{Site: "core/scan/*", P: p, Fault: faultinject.Fault{Err: ErrTransient}},
		{Site: "core/scan/*", P: p / 2, Fault: faultinject.Fault{Panic: "chaos: injected scan panic"}},
	}
}

// ServeChaos is a fault schedule for the serving path: requests are
// delayed, failed, or panicked with probability p each. Sites follow the
// daemon's "unidetectd<path>" convention.
func ServeChaos(p float64) []faultinject.Rule {
	return []faultinject.Rule{
		{Site: "unidetectd/detect", P: p, Fault: faultinject.Fault{Panic: "chaos: injected handler panic"}},
		{Site: "unidetectd/detect", P: p, Fault: faultinject.Fault{Err: ErrTransient}},
		{Site: "unidetectd/*", P: p, Fault: faultinject.Fault{Delay: 2 * time.Millisecond}},
	}
}

// Golden compares got against the golden file at path (relative to the
// test's working directory). Under -chaos.update the file is rewritten
// instead. The diff failure dumps both sides via Artifact, so CI failures
// ship the observed transcript as an artifact.
func Golden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("testkit: create golden dir: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("testkit: write golden %s: %v", path, err)
		}
		t.Logf("testkit: rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("testkit: read golden %s (rerun with -chaos.update to create): %v", path, err)
	}
	if string(want) != got {
		Artifact(t, filepath.Base(path)+".got", got)
		t.Errorf("testkit: %s mismatch (rerun with -chaos.update to accept):\n--- want\n%s--- got\n%s", path, want, got)
	}
}

// Artifact writes content under $CHAOS_ARTIFACT_DIR for CI to upload
// (e.g. failure transcripts). Without the variable it logs the content
// instead, so local failures are still diagnosable.
func Artifact(t testing.TB, name, content string) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		t.Logf("testkit: artifact %s:\n%s", name, content)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("testkit: create artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, sanitize(t.Name())+"-"+name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Logf("testkit: write artifact %s: %v", path, err)
		return
	}
	t.Logf("testkit: wrote artifact %s", path)
}

// DumpTranscriptOnFailure registers a cleanup that, if the test failed,
// ships the injector's transcript (per Artifact) — the failure's exact
// fault schedule, for offline replay.
func DumpTranscriptOnFailure(t *testing.T, seed int64, inj *faultinject.Injector) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() || inj == nil {
			return
		}
		events := inj.Transcript()
		faultinject.SortEvents(events)
		Artifact(t, fmt.Sprintf("seed%d-transcript.txt", seed), faultinject.FormatTranscript(events))
	})
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
