package testkit_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/mapreduce"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/testkit"
)

// chaosCorpus generates a small training corpus; chaos tests iterate
// seeds, so it stays cheap.
func chaosCorpus(seed int64) *corpus.Corpus {
	spec := datagen.Spec{Name: "chaos", Profile: datagen.ProfileWeb, NumTables: 120,
		AvgRows: 16, AvgCols: 4, Seed: seed}
	return corpus.New(spec.Name, datagen.Generate(spec).Tables)
}

// evalTables generates tables with injected errors to score models on.
func evalTables(seed int64) *datagen.Result {
	return datagen.Generate(datagen.Spec{Name: "chaos-eval", Profile: datagen.ProfileWeb,
		NumTables: 40, AvgRows: 20, AvgCols: 4, ErrorRate: 1.5, Seed: seed})
}

func saveBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// retry is the policy the transient schedules are designed against (see
// TrainChaos): enough attempts that a fail-fast job always completes.
func retry() mapreduce.RetryPolicy {
	return mapreduce.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond,
		MaxDelay: 8 * time.Millisecond, Jitter: 0.5}
}

// parseRegistry round-trips a registry through its own text exposition,
// so every metric assertion in the chaos suite also validates the
// format end to end.
func parseRegistry(t *testing.T, reg *obs.Registry) map[string]*obs.PromFamily {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePromText(&sb); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	fams, err := obs.ParseProm(sb.String())
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, sb.String())
	}
	return fams
}

// TestChaosTrainMatchesClean is the central metamorphic property of the
// fault-tolerant trainer: a run whose every fault is transient (absorbed
// by retries, no shard loss) must produce the *byte-identical* model of a
// fault-free run — retries, backoff, panics and injected delays must
// leave no trace in the learned statistics.
func TestChaosTrainMatchesClean(t *testing.T) {
	bg := chaosCorpus(3)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()

	clean, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes := saveBytes(t, clean)
	evals := evalTables(9)
	cleanFindings := core.NewPredictor(clean, dets, &core.Env{Index: bg.Index()}).
		DetectAll(ctx, evals.Tables)
	if len(cleanFindings) == 0 {
		t.Fatal("clean model found nothing on error-injected tables; test has no power")
	}

	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clock := &testkit.VirtualClock{}
			inj := faultinject.New(seed, testkit.TrainChaos(0.04)...).WithClock(clock)
			testkit.DumpTranscriptOnFailure(t, seed, inj)
			// Full instrumentation on the virtual clock: metrics, spans
			// and phase timings must leave the learned bytes untouched.
			reg := obs.NewRegistry().WithClock(clock)
			tracer := obs.NewTracer(reg, 64)
			stats := &mapreduce.Stats{}
			m, err := core.TrainWith(obs.WithTracer(ctx, tracer), cfg, core.TrainOptions{FT: mapreduce.FT{
				Retry: retry(), Seed: seed, Inject: inj, Clock: clock,
				Stats: stats, Logf: t.Logf, Obs: reg,
			}}, bg, dets)
			if err != nil {
				t.Fatalf("transient chaos killed a retrying train: %v", err)
			}
			if inj.Fires() == 0 {
				t.Fatal("schedule fired no faults; test has no power")
			}
			if stats.MapRetries == 0 {
				t.Error("no map retries recorded despite every shard's first attempt failing")
			}
			// The registry's view must agree with the Stats the job
			// reported through the legacy channel.
			fams := parseRegistry(t, reg)
			if s, ok := obs.Sample(fams, "unidetect_mapreduce_retries_total",
				map[string]string{"phase": "map"}); !ok || int(s.Value) != stats.MapRetries {
				t.Errorf("map retries metric = %+v, want %d", s, stats.MapRetries)
			}
			if spans, total := tracer.Finished(); total < 3 || len(spans) == 0 {
				t.Errorf("expected train + both phase spans, got %d", total)
			}
			if stats.Lost() != 0 {
				t.Errorf("transient schedule lost work: %+v", stats)
			}
			if !bytes.Equal(saveBytes(t, m), cleanBytes) {
				t.Error("chaos-trained model differs from clean model")
			}
			// LR agreement on error-injected tables: same model bytes must
			// mean same findings, checked end to end through the predictor.
			got := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()}).
				DetectAll(ctx, evals.Tables)
			if len(got) != len(cleanFindings) {
				t.Fatalf("chaos model found %d findings, clean %d", len(got), len(cleanFindings))
			}
			for i := range got {
				c, g := cleanFindings[i], got[i]
				if c.Table != g.Table || c.Column != g.Column || c.LR != g.LR {
					t.Fatalf("finding %d disagrees: clean %s/%s LR=%g vs chaos %s/%s LR=%g",
						i, c.Table, c.Column, c.LR, g.Table, g.Column, g.LR)
				}
			}
		})
	}
}

// TestChaosResumeEqualsRestart is the multi-seed metamorphic form of the
// checkpoint acceptance test: kill training mid-reduce under each seed's
// schedule, resume from the checkpoint, and require byte-identity with
// the uninterrupted run.
func TestChaosResumeEqualsRestart(t *testing.T) {
	bg := chaosCorpus(5)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()

	clean, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes := saveBytes(t, clean)

	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed, testkit.TrainKill(0.5)...)
			testkit.DumpTranscriptOnFailure(t, seed, inj)
			// One registry and tracer across kill and resume, as a
			// long-lived process would have: spans enabled end to end.
			reg := obs.NewRegistry()
			ctx := obs.WithTracer(ctx, obs.NewTracer(reg, 64))
			ckpt := filepath.Join(t.TempDir(), "train.ckpt")
			_, err := core.TrainWith(ctx, cfg, core.TrainOptions{
				FT:             mapreduce.FT{Inject: inj, Seed: seed, Logf: t.Logf, Obs: reg},
				CheckpointPath: ckpt,
			}, bg, dets)
			if err == nil {
				t.Fatal("lethal schedule did not kill the run")
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("run died of %v, not an injected fault", err)
			}
			killFams := parseRegistry(t, reg)
			killWritten, _ := obs.Sample(killFams, "unidetect_train_checkpoint_buckets_written_total", nil)
			resumed, err := core.TrainWith(ctx, cfg, core.TrainOptions{
				FT:             mapreduce.FT{Logf: t.Logf, Obs: reg},
				CheckpointPath: ckpt,
			}, bg, dets)
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if !bytes.Equal(saveBytes(t, resumed), cleanBytes) {
				t.Error("resumed model differs from uninterrupted model")
			}
			// Every bucket the killed run durably wrote — and only those —
			// must come back from the checkpoint on resume.
			fams := parseRegistry(t, reg)
			resumedN, _ := obs.Sample(fams, "unidetect_train_checkpoint_buckets_resumed_total", nil)
			if resumedN.Value != killWritten.Value {
				t.Errorf("resumed %v buckets, but the killed run wrote %v", resumedN.Value, killWritten.Value)
			}
			wantResumes := 0.0
			if killWritten.Value > 0 {
				wantResumes = 1
			}
			if s, ok := obs.Sample(fams, "unidetect_train_resumes_total", nil); !ok || s.Value != wantResumes {
				t.Errorf("resumes metric = %v, want %v", s.Value, wantResumes)
			}
		})
	}
}

// TestChaosShardKillResumeMerge extends the resume property to
// partitioned training: kill a sharded run under each seed's lethal
// schedule, resume it against the same shard directory, and require the
// merged model to be byte-identical to an uninterrupted run. Completed
// shards must come back from their persisted models (counted against
// the .model files the killed run left behind), not from retraining.
func TestChaosShardKillResumeMerge(t *testing.T) {
	bg := chaosCorpus(21)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()
	const shards = 3

	clean, err := core.TrainSharded(ctx, cfg, core.ShardedOptions{Shards: shards}, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes := saveBytes(t, clean)
	mono, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cleanBytes, saveBytes(t, mono)) {
		t.Fatal("sharded training differs from monolithic before any chaos; merge tier broken")
	}

	countShardModels := func(dir string) int {
		t.Helper()
		models, err := filepath.Glob(filepath.Join(dir, "shard-*.model"))
		if err != nil {
			t.Fatal(err)
		}
		return len(models)
	}

	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed, testkit.TrainKill(0.5)...)
			testkit.DumpTranscriptOnFailure(t, seed, inj)
			reg := obs.NewRegistry()
			dir := t.TempDir()
			_, err := core.TrainSharded(ctx, cfg, core.ShardedOptions{
				TrainOptions: core.TrainOptions{FT: mapreduce.FT{
					Inject: inj, Seed: seed, Logf: t.Logf, Obs: reg,
				}},
				Shards: shards, Dir: dir,
			}, bg, dets)
			if err == nil {
				t.Fatal("lethal schedule did not kill the sharded run")
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("run died of %v, not an injected fault", err)
			}
			persisted := countShardModels(dir)

			resumed, err := core.TrainSharded(ctx, cfg, core.ShardedOptions{
				TrainOptions: core.TrainOptions{FT: mapreduce.FT{Logf: t.Logf, Obs: reg}},
				Shards:       shards, Dir: dir,
			}, bg, dets)
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if !bytes.Equal(saveBytes(t, resumed), cleanBytes) {
				t.Error("resumed sharded model differs from the uninterrupted run")
			}
			if countShardModels(dir) != 0 {
				t.Error("shard models left behind after a successful merge")
			}
			// Exactly the shards the killed run persisted come back from
			// disk; the rest train, and exactly one merge folds them.
			fams := parseRegistry(t, reg)
			if s, _ := obs.Sample(fams, "unidetect_train_shard_models_resumed_total", nil); int(s.Value) != persisted {
				t.Errorf("shard models resumed = %v, but the killed run persisted %d", s.Value, persisted)
			}
			if s, _ := obs.Sample(fams, "unidetect_train_merges_total", nil); s.Value != 1 {
				t.Errorf("merges = %v, want 1 (only the resumed run merges)", s.Value)
			}
			if s, _ := obs.Sample(fams, "unidetect_train_shards_total", nil); int(s.Value) < shards {
				t.Errorf("shards trained = %v across kill+resume, want >= %d", s.Value, shards)
			}
		})
	}

	// A fixed schedule that kills exactly the second shard job's map
	// phase: shard 0 completes and must resume from its persisted model.
	t.Run("dead-second-shard", func(t *testing.T) {
		inj := faultinject.New(1, faultinject.Rule{
			Site: "mapreduce/map/shard=2", Hits: []int{2},
			Fault: faultinject.Fault{Err: errors.New("chaos: dead map")},
		})
		testkit.DumpTranscriptOnFailure(t, 1, inj)
		reg := obs.NewRegistry()
		dir := t.TempDir()
		_, err := core.TrainSharded(ctx, cfg, core.ShardedOptions{
			TrainOptions: core.TrainOptions{FT: mapreduce.FT{Inject: inj, Seed: 1, Obs: reg}},
			Shards:       shards, Dir: dir,
		}, bg, dets)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("want an injected death, got %v", err)
		}
		if got := countShardModels(dir); got != 1 {
			t.Fatalf("killed run persisted %d shard models, want exactly shard 0", got)
		}
		resumed, err := core.TrainSharded(ctx, cfg, core.ShardedOptions{
			TrainOptions: core.TrainOptions{FT: mapreduce.FT{Obs: reg}},
			Shards:       shards, Dir: dir,
		}, bg, dets)
		if err != nil {
			t.Fatalf("resume failed: %v", err)
		}
		if !bytes.Equal(saveBytes(t, resumed), cleanBytes) {
			t.Error("resumed sharded model differs from the uninterrupted run")
		}
		fams := parseRegistry(t, reg)
		if s, _ := obs.Sample(fams, "unidetect_train_shard_models_resumed_total", nil); s.Value != 1 {
			t.Errorf("shard models resumed = %v, want exactly 1 (shard 0)", s.Value)
		}
	})
}

// TestChaosLossBudget exercises graceful degradation end to end: a
// permanently dead shard under skip-and-log yields a model that still
// detects errors, and the loss is visible in Stats rather than silent.
func TestChaosLossBudget(t *testing.T) {
	bg := chaosCorpus(7)
	cfg := core.DefaultConfig()
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()

	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			shard := int(seed) % bg.NumTables()
			inj := faultinject.New(seed, testkit.DeadShard(shard))
			testkit.DumpTranscriptOnFailure(t, seed, inj)
			stats := &mapreduce.Stats{}
			m, err := core.TrainWith(ctx, cfg, core.TrainOptions{FT: mapreduce.FT{
				Retry:   mapreduce.RetryPolicy{MaxAttempts: 2},
				Policy:  mapreduce.SkipAndLog,
				MaxLost: 3,
				Seed:    seed,
				Inject:  inj,
				Stats:   stats,
				Logf:    t.Logf,
			}}, bg, dets)
			if err != nil {
				t.Fatalf("within-budget loss aborted training: %v", err)
			}
			if len(stats.LostShards) != 1 || stats.LostShards[0] != shard {
				t.Errorf("LostShards = %v, want [%d]", stats.LostShards, shard)
			}
			evals := evalTables(11)
			found := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()}).
				DetectAll(ctx, evals.Tables)
			if len(found) == 0 {
				t.Error("degraded model detects nothing; degradation is not graceful")
			}
		})
	}
}

// TestGoldenTranscript pins the exact fault schedule seed 1 produces on
// a fixed job. The schedule is a pure function of (seed, site, ordinal),
// so the sorted transcript is reproducible across runs, interleavings
// and platforms — any drift means the hash chain changed and every
// recorded chaos run's meaning silently shifted.
func TestGoldenTranscript(t *testing.T) {
	bg := chaosCorpus(3)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	clock := &testkit.VirtualClock{}
	inj := faultinject.New(1, testkit.TrainChaos(0.04)...).WithClock(clock)
	if _, err := core.TrainWith(context.Background(), cfg, core.TrainOptions{FT: mapreduce.FT{
		Retry: retry(), Seed: 1, Inject: inj, Clock: clock,
	}}, bg, dets); err != nil {
		t.Fatal(err)
	}
	events := inj.Transcript()
	faultinject.SortEvents(events)
	testkit.Golden(t, filepath.Join("testdata", "golden", "train-seed1-transcript.txt"),
		faultinject.FormatTranscript(events))
}

// TestChaosPredictDegradation pins the accounting of graceful
// degradation on the batch predict path: the degraded-table counter and
// the set of logged sites must match the faultinject transcript exactly
// — every injected fault degrades exactly one table, every degradation
// is logged, and nothing degrades without an injected cause.
func TestChaosPredictDegradation(t *testing.T) {
	bg := chaosCorpus(13)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()
	m, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	evals := evalTables(17)

	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed, testkit.PredictChaos(0.2)...)
			testkit.DumpTranscriptOnFailure(t, seed, inj)
			reg := obs.NewRegistry()
			var mu sync.Mutex
			var logged []string // guarded by mu
			p := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()})
			p.Inject = inj
			p.Obs = reg
			p.Logf = func(format string, args ...any) {
				mu.Lock()
				logged = append(logged, fmt.Sprintf(format, args...))
				mu.Unlock()
			}
			p.DetectAll(ctx, evals.Tables)

			events := inj.Transcript()
			if len(events) == 0 {
				t.Fatal("schedule fired no faults; test has no power")
			}
			wantSites := make([]string, len(events))
			for i, e := range events {
				wantSites[i] = e.Site
			}
			sort.Strings(wantSites)

			// Every log line names the degraded table; rebuild the site
			// set from the logs and require exact equality.
			gotSites := make([]string, 0, len(logged))
			for _, line := range logged {
				name, ok := degradedTable(line)
				if !ok {
					t.Fatalf("unparseable degradation log %q", line)
				}
				gotSites = append(gotSites, "core/predict/table="+name)
			}
			sort.Strings(gotSites)
			if !slices.Equal(gotSites, wantSites) {
				t.Errorf("logged sites diverge from transcript:\nlogged: %v\ntranscript: %v",
					gotSites, wantSites)
			}

			fams := parseRegistry(t, reg)
			if s, ok := obs.Sample(fams, "unidetect_predict_degraded_tables_total", nil); !ok || int(s.Value) != len(events) {
				t.Errorf("degraded counter = %v, want %d (one per transcript event)", s.Value, len(events))
			}
			if s, ok := obs.Sample(fams, "unidetect_predict_tables_total", nil); !ok ||
				int(s.Value) != len(evals.Tables)-len(events) {
				t.Errorf("scored tables = %v, want %d of %d (rest degraded)",
					s.Value, len(evals.Tables)-len(events), len(evals.Tables))
			}
		})
	}
}

// degradedTable extracts the quoted table name from a detectShard
// degradation log line.
func degradedTable(line string) (string, bool) {
	const prefix = `core: predict table "`
	if !strings.HasPrefix(line, prefix) {
		return "", false
	}
	rest := line[len(prefix):]
	end := strings.Index(rest, `"`)
	if end < 0 {
		return "", false
	}
	return rest[:end], true
}

// TestVirtualClock pins the clock's contract: sleeps accumulate without
// blocking and a cancelled context short-circuits.
func TestVirtualClock(t *testing.T) {
	c := &testkit.VirtualClock{}
	ctx := context.Background()
	if err := c.Sleep(ctx, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Sleep(ctx, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Elapsed() != 5*time.Second {
		t.Errorf("Elapsed = %v, want 5s", c.Elapsed())
	}
	if got := c.Sleeps(); len(got) != 2 || got[0] != 3*time.Second {
		t.Errorf("Sleeps = %v", got)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := c.Sleep(cancelled, time.Second); err == nil {
		t.Error("Sleep on cancelled context returned nil")
	}
	if c.Elapsed() != 5*time.Second {
		t.Error("cancelled Sleep advanced the clock")
	}
}
