package testkit_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/mapreduce"
	"github.com/unidetect/unidetect/internal/testkit"
)

// chaosCorpus generates a small training corpus; chaos tests iterate
// seeds, so it stays cheap.
func chaosCorpus(seed int64) *corpus.Corpus {
	spec := datagen.Spec{Name: "chaos", Profile: datagen.ProfileWeb, NumTables: 120,
		AvgRows: 16, AvgCols: 4, Seed: seed}
	return corpus.New(spec.Name, datagen.Generate(spec).Tables)
}

// evalTables generates tables with injected errors to score models on.
func evalTables(seed int64) *datagen.Result {
	return datagen.Generate(datagen.Spec{Name: "chaos-eval", Profile: datagen.ProfileWeb,
		NumTables: 40, AvgRows: 20, AvgCols: 4, ErrorRate: 1.5, Seed: seed})
}

func saveBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// retry is the policy the transient schedules are designed against (see
// TrainChaos): enough attempts that a fail-fast job always completes.
func retry() mapreduce.RetryPolicy {
	return mapreduce.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond,
		MaxDelay: 8 * time.Millisecond, Jitter: 0.5}
}

// TestChaosTrainMatchesClean is the central metamorphic property of the
// fault-tolerant trainer: a run whose every fault is transient (absorbed
// by retries, no shard loss) must produce the *byte-identical* model of a
// fault-free run — retries, backoff, panics and injected delays must
// leave no trace in the learned statistics.
func TestChaosTrainMatchesClean(t *testing.T) {
	bg := chaosCorpus(3)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()

	clean, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes := saveBytes(t, clean)
	evals := evalTables(9)
	cleanFindings := core.NewPredictor(clean, dets, &core.Env{Index: bg.Index()}).
		DetectAll(ctx, evals.Tables)
	if len(cleanFindings) == 0 {
		t.Fatal("clean model found nothing on error-injected tables; test has no power")
	}

	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clock := &testkit.VirtualClock{}
			inj := faultinject.New(seed, testkit.TrainChaos(0.04)...).WithClock(clock)
			testkit.DumpTranscriptOnFailure(t, seed, inj)
			stats := &mapreduce.Stats{}
			m, err := core.TrainWith(ctx, cfg, core.TrainOptions{FT: mapreduce.FT{
				Retry: retry(), Seed: seed, Inject: inj, Clock: clock,
				Stats: stats, Logf: t.Logf,
			}}, bg, dets)
			if err != nil {
				t.Fatalf("transient chaos killed a retrying train: %v", err)
			}
			if inj.Fires() == 0 {
				t.Fatal("schedule fired no faults; test has no power")
			}
			if stats.MapRetries == 0 {
				t.Error("no map retries recorded despite every shard's first attempt failing")
			}
			if stats.Lost() != 0 {
				t.Errorf("transient schedule lost work: %+v", stats)
			}
			if !bytes.Equal(saveBytes(t, m), cleanBytes) {
				t.Error("chaos-trained model differs from clean model")
			}
			// LR agreement on error-injected tables: same model bytes must
			// mean same findings, checked end to end through the predictor.
			got := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()}).
				DetectAll(ctx, evals.Tables)
			if len(got) != len(cleanFindings) {
				t.Fatalf("chaos model found %d findings, clean %d", len(got), len(cleanFindings))
			}
			for i := range got {
				c, g := cleanFindings[i], got[i]
				if c.Table != g.Table || c.Column != g.Column || c.LR != g.LR {
					t.Fatalf("finding %d disagrees: clean %s/%s LR=%g vs chaos %s/%s LR=%g",
						i, c.Table, c.Column, c.LR, g.Table, g.Column, g.LR)
				}
			}
		})
	}
}

// TestChaosResumeEqualsRestart is the multi-seed metamorphic form of the
// checkpoint acceptance test: kill training mid-reduce under each seed's
// schedule, resume from the checkpoint, and require byte-identity with
// the uninterrupted run.
func TestChaosResumeEqualsRestart(t *testing.T) {
	bg := chaosCorpus(5)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()

	clean, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes := saveBytes(t, clean)

	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed, testkit.TrainKill(0.5)...)
			testkit.DumpTranscriptOnFailure(t, seed, inj)
			ckpt := filepath.Join(t.TempDir(), "train.ckpt")
			_, err := core.TrainWith(ctx, cfg, core.TrainOptions{
				FT:             mapreduce.FT{Inject: inj, Seed: seed, Logf: t.Logf},
				CheckpointPath: ckpt,
			}, bg, dets)
			if err == nil {
				t.Fatal("lethal schedule did not kill the run")
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("run died of %v, not an injected fault", err)
			}
			resumed, err := core.TrainWith(ctx, cfg, core.TrainOptions{
				FT:             mapreduce.FT{Logf: t.Logf},
				CheckpointPath: ckpt,
			}, bg, dets)
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if !bytes.Equal(saveBytes(t, resumed), cleanBytes) {
				t.Error("resumed model differs from uninterrupted model")
			}
		})
	}
}

// TestChaosLossBudget exercises graceful degradation end to end: a
// permanently dead shard under skip-and-log yields a model that still
// detects errors, and the loss is visible in Stats rather than silent.
func TestChaosLossBudget(t *testing.T) {
	bg := chaosCorpus(7)
	cfg := core.DefaultConfig()
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()

	for _, seed := range testkit.Seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			shard := int(seed) % bg.NumTables()
			inj := faultinject.New(seed, testkit.DeadShard(shard))
			testkit.DumpTranscriptOnFailure(t, seed, inj)
			stats := &mapreduce.Stats{}
			m, err := core.TrainWith(ctx, cfg, core.TrainOptions{FT: mapreduce.FT{
				Retry:   mapreduce.RetryPolicy{MaxAttempts: 2},
				Policy:  mapreduce.SkipAndLog,
				MaxLost: 3,
				Seed:    seed,
				Inject:  inj,
				Stats:   stats,
				Logf:    t.Logf,
			}}, bg, dets)
			if err != nil {
				t.Fatalf("within-budget loss aborted training: %v", err)
			}
			if len(stats.LostShards) != 1 || stats.LostShards[0] != shard {
				t.Errorf("LostShards = %v, want [%d]", stats.LostShards, shard)
			}
			evals := evalTables(11)
			found := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()}).
				DetectAll(ctx, evals.Tables)
			if len(found) == 0 {
				t.Error("degraded model detects nothing; degradation is not graceful")
			}
		})
	}
}

// TestGoldenTranscript pins the exact fault schedule seed 1 produces on
// a fixed job. The schedule is a pure function of (seed, site, ordinal),
// so the sorted transcript is reproducible across runs, interleavings
// and platforms — any drift means the hash chain changed and every
// recorded chaos run's meaning silently shifted.
func TestGoldenTranscript(t *testing.T) {
	bg := chaosCorpus(3)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	clock := &testkit.VirtualClock{}
	inj := faultinject.New(1, testkit.TrainChaos(0.04)...).WithClock(clock)
	if _, err := core.TrainWith(context.Background(), cfg, core.TrainOptions{FT: mapreduce.FT{
		Retry: retry(), Seed: 1, Inject: inj, Clock: clock,
	}}, bg, dets); err != nil {
		t.Fatal(err)
	}
	events := inj.Transcript()
	faultinject.SortEvents(events)
	testkit.Golden(t, filepath.Join("testdata", "golden", "train-seed1-transcript.txt"),
		faultinject.FormatTranscript(events))
}

// TestVirtualClock pins the clock's contract: sleeps accumulate without
// blocking and a cancelled context short-circuits.
func TestVirtualClock(t *testing.T) {
	c := &testkit.VirtualClock{}
	ctx := context.Background()
	if err := c.Sleep(ctx, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Sleep(ctx, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Elapsed() != 5*time.Second {
		t.Errorf("Elapsed = %v, want 5s", c.Elapsed())
	}
	if got := c.Sleeps(); len(got) != 2 || got[0] != 3*time.Second {
		t.Errorf("Sleeps = %v", got)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := c.Sleep(cancelled, time.Second); err == nil {
		t.Error("Sleep on cancelled context returned nil")
	}
	if c.Elapsed() != 5*time.Second {
		t.Error("cancelled Sleep advanced the clock")
	}
}
