package testkit

import (
	"context"
	"sync"
	"time"
)

// VirtualClock is a faultinject.Clock that advances instantly: Sleep
// never blocks, it accumulates the requested duration into a virtual
// now and records it. Backoff schedules become assertable data and
// chaos tests with thousands of injected delays finish in microseconds.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Duration   // virtual elapsed time; guarded by mu
	sleeps []time.Duration // every Sleep's duration, in call order; guarded by mu
}

// Sleep advances virtual time by d, honouring an already-cancelled
// context the way a real timer wait would.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.now += d
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
	return nil
}

// Elapsed returns total virtual time slept.
func (c *VirtualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Now returns the current virtual time, satisfying obs.Clock: a metrics
// registry put on a VirtualClock sees time advance only when injected
// delays are slept, making instrumented chaos runs — span dumps included
// — pure functions of the schedule.
func (c *VirtualClock) Now() time.Duration {
	return c.Elapsed()
}

// Sleeps returns a copy of every sleep duration in call order.
func (c *VirtualClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.sleeps))
	copy(out, c.sleeps)
	return out
}
