package testkit

// daemon.go is the shared harness for tests that talk to a running
// unidetectd: boot an in-process handler on an ephemeral port (or
// attach to an already-running daemon by URL), wait for readiness,
// and scrape /metrics with text-format validation. Every daemon test
// used to carry its own copy of this boilerplate; keeping one copy
// here means the e2e harness and the unit tests agree on what
// "healthy" and "this metric's value" mean.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/obs"
)

// Daemon is a handle on a serving unidetectd — either an in-process
// handler behind an httptest listener (StartDaemon) or an external
// process reached by URL (AttachDaemon). Methods fail the test on
// transport errors so callers read straight-line.
type Daemon struct {
	tb     testing.TB
	url    string
	client *http.Client
}

// StartDaemon serves h on an ephemeral port and waits until /healthz
// answers 200. The listener is torn down with the test.
func StartDaemon(tb testing.TB, h http.Handler) *Daemon {
	tb.Helper()
	ts := httptest.NewServer(h)
	tb.Cleanup(ts.Close)
	d := &Daemon{tb: tb, url: ts.URL, client: ts.Client()}
	d.WaitHealthy(5 * time.Second)
	return d
}

// AttachDaemon points the harness at an already-listening daemon (an
// e2e subprocess) and waits until /healthz answers 200 — a freshly
// exec'd daemon may still be training its model.
func AttachDaemon(tb testing.TB, url string, within time.Duration) *Daemon {
	tb.Helper()
	d := &Daemon{tb: tb, url: strings.TrimSuffix(url, "/"), client: &http.Client{Timeout: 30 * time.Second}}
	d.WaitHealthy(within)
	return d
}

// URL returns the daemon's base URL (no trailing slash).
func (d *Daemon) URL() string { return d.url }

// Client returns the HTTP client bound to this daemon, for requests
// the convenience wrappers don't cover (custom headers, streaming).
func (d *Daemon) Client() *http.Client { return d.client }

// WaitHealthy polls /healthz until it answers 200 or the deadline
// passes. Connection refusals are expected while the daemon boots.
func (d *Daemon) WaitHealthy(within time.Duration) {
	d.tb.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := d.client.Get(d.url + "/healthz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			d.tb.Fatalf("daemon at %s not healthy within %v (last err: %v)", d.url, within, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Get issues a GET with optional headers and returns status and body.
func (d *Daemon) Get(path string, hdr ...string) (int, []byte) {
	d.tb.Helper()
	return d.do(http.MethodGet, path, "", "", hdr)
}

// Post issues a POST and returns status and body. Trailing hdr pairs
// are header key/values (e.g. "X-API-Key", key).
func (d *Daemon) Post(path, contentType, body string, hdr ...string) (int, []byte) {
	d.tb.Helper()
	return d.do(http.MethodPost, path, contentType, body, hdr)
}

func (d *Daemon) do(method, path, contentType, body string, hdr []string) (int, []byte) {
	d.tb.Helper()
	if len(hdr)%2 != 0 {
		d.tb.Fatalf("odd header list: %q", hdr)
	}
	req, err := http.NewRequest(method, d.url+path, strings.NewReader(body))
	if err != nil {
		d.tb.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for i := 0; i < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := d.client.Do(req)
	if err != nil {
		d.tb.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		d.tb.Fatalf("%s %s: read body: %v", method, path, err)
	}
	return resp.StatusCode, b
}

// Metrics scrapes /metrics and returns the parsed families plus the
// raw exposition, failing the test if the body is not valid
// Prometheus text format.
func (d *Daemon) Metrics() (map[string]*obs.PromFamily, string) {
	d.tb.Helper()
	resp, err := d.client.Get(d.url + "/metrics")
	if err != nil {
		d.tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.tb.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		d.tb.Errorf("/metrics Content-Type = %q, want text format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		d.tb.Fatal(err)
	}
	fams, err := obs.ParseProm(string(body))
	if err != nil {
		d.tb.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, body)
	}
	return fams, string(body)
}

// Metric returns one sample's value from a fresh /metrics scrape,
// failing the test if the metric is absent.
func (d *Daemon) Metric(name string, labels map[string]string) float64 {
	d.tb.Helper()
	fams, _ := d.Metrics()
	s, ok := obs.Sample(fams, name, labels)
	if !ok {
		d.tb.Fatalf("metric %s%v missing from /metrics", name, labels)
	}
	return s.Value
}

// Snapshot captures every sample of a fresh /metrics scrape keyed by
// "name{k=v,...}" with sorted labels, for diffing with Delta.
func (d *Daemon) Snapshot() map[string]float64 {
	d.tb.Helper()
	fams, _ := d.Metrics()
	snap := make(map[string]float64)
	for name, fam := range fams {
		for _, s := range fam.Samples {
			snap[sampleKey(name, s.Labels)] = s.Value
		}
	}
	return snap
}

func sampleKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%s", k, labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Delta diffs two Snapshot captures: every key whose value changed
// (or appeared) maps to after-minus-before. Unchanged keys are
// omitted, so an assertion can require an exact set of movements.
func Delta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range before {
		if _, ok := after[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	return out
}

// statuszInFlight is the slice of /statusz the wait helpers decode;
// the serving package owns the full shape.
type statuszInFlight struct {
	InFlight int64 `json:"in_flight"`
}

// WaitInFlight polls /statusz over HTTP until at least want requests
// are in flight — the standard way to pin a concurrency slot before
// asserting shed behaviour.
func (d *Daemon) WaitInFlight(want int64) {
	d.tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, body := d.Get("/statusz")
		var got statuszInFlight
		if err := json.Unmarshal(body, &got); err != nil {
			d.tb.Fatal(err)
		}
		if got.InFlight >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.tb.Fatal("timed out waiting for in-flight request")
}

// WaitInFlight is the in-process variant for handler-level tests that
// never open a listener: poll h's /statusz via a recorder until at
// least want requests are in flight.
func WaitInFlight(tb testing.TB, h http.Handler, want int64) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
		var got statuszInFlight
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			tb.Fatal(err)
		}
		if got.InFlight >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	tb.Fatal("timed out waiting for in-flight request")
}
