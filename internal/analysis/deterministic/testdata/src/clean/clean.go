package clean

import (
	"math/rand"
	"sort"
)

// Measure ranges over a map but sorts before returning: order cannot leak.
func Measure(weights map[string]float64) []float64 {
	var scores []float64
	for _, w := range weights {
		scores = append(scores, w)
	}
	sort.Float64s(scores)
	return scores
}

// Detect accumulates an integer; integer addition commutes.
func Detect(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Predict copies map to map; the destination has no iteration order.
func Predict(src map[string]float64) map[string]float64 {
	dst := make(map[string]float64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Train injects a seeded source: deterministic by construction.
func Train(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// LR appends in map order but the slice never reaches a return value.
func LR(m map[string]float64) int {
	var scratch []float64
	for _, v := range m {
		scratch = append(scratch, v)
	}
	return len(scratch)
}
