package suppressed

// Measure's map-order leak is reviewed and accepted in this fixture; the
// standalone directive on the line above the declaration covers it.
//
//lint:ignore deterministic fixture exercises the suppression layer
func Measure(weights map[string]float64) []float64 {
	var scores []float64
	for _, w := range weights {
		scores = append(scores, w)
	}
	return scores
}

func LR(m map[string]float64) []float64 { //lint:ignore deterministic trailing form, same line as the diagnostic
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

//lint:ignore deterministic stale: Train is deterministic now // want `unused //lint:ignore deterministic suppression`
func Train(seed int64) float64 {
	return float64(seed)
}
