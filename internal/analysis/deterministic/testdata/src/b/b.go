// Package b is a dependency of testdata package a: its nondeterminism
// must reach a's roots through an exported fact, not through source
// inspection of a alone.
package b

// Keys returns the keys of m in map-iteration order: nondeterministic.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
