// Package obspkg is a stand-in for internal/obs in the -trust test: a
// metrics registry whose clock method reads wall time. Untrusted, that
// read would taint every instrumented caller; the -trust flag contains
// it, because the real package only reads time through an injectable
// Clock whose virtual implementation keeps chaos runs deterministic.
package obspkg

import "time"

type Registry struct{ start time.Time }

// Now reads the wall clock — the taint -trust must contain.
func (r *Registry) Now() time.Duration { return time.Since(r.start) }

// Observe records a sample; deterministic by itself.
func (r *Registry) Observe(v float64) {}
