package trusted

import (
	"time"

	"obspkg"
)

type D struct {
	reg *obspkg.Registry
}

// Measure is instrumented through the trusted registry: the clock reads
// hide behind obspkg, so the metric path stays provably deterministic
// and no suppression is needed.
func (d *D) Measure(rows []string) []float64 {
	start := d.reg.Now()
	out := make([]float64, len(rows))
	d.reg.Observe(float64(d.reg.Now() - start))
	return out
}

// Detect reaches the wall clock through a local helper, not the trusted
// package: still tainted — trust is per package, not per time read.
func Detect(xs []string) []string { // want `Detect is a determinism root \(metric path\) but calls stamp, which calls time\.Since, which reads the wall clock`
	_ = stamp()
	return xs
}

func stamp() time.Duration { return time.Since(time.Time{}) }
