package a

import (
	"math/rand"
	"time"

	"b"
)

type D struct {
	weights map[string]float64
}

// Measure leaks map-iteration order into the returned score slice.
func (d *D) Measure(rows []string) []float64 { // want `Measure is a determinism root \(metric path\) but ranges over a map and appends to "scores"`
	var scores []float64
	for _, w := range d.weights {
		scores = append(scores, w)
	}
	return scores
}

// Detect is clean locally; the taint arrives from package b via a fact.
func Detect(m map[string]int) []string { // want `Detect is a determinism root \(metric path\) but calls Keys, which ranges over a map`
	return b.Keys(m)
}

// Train draws from the global math/rand source instead of an injected one.
func Train(n int) float64 { // want `Train is a determinism root \(metric path\) but calls global math/rand\.Float64`
	return rand.Float64() * float64(n)
}

// Predict reads the wall clock.
func Predict(xs []float64) float64 { // want `Predict is a determinism root \(metric path\) but calls time\.Now, which reads the wall clock`
	_ = time.Now()
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// LR is tainted two hops deep, through a local helper.
func LR(counts map[string]float64) float64 { // want `LR is a determinism root \(metric path\) but calls sumFloats, which ranges over a map and accumulates float "total"`
	return sumFloats(counts)
}

// sumFloats accumulates a float in map order: addition does not commute
// in the last ulp, so the sum varies run to run. Not a root, so the
// diagnostic lands on LR; sumFloats only gets the fact.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
