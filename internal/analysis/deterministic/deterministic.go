// Package deterministic defines an inter-package analyzer that proves the
// functions on Uni-Detect's metric paths deterministic.
//
// Theorem 1's monotonicity and the merged LR ranking (§3–4) hold only if
// every metric function m — and everything it transitively calls — is a
// pure function of its inputs. Three leaks break that silently, without
// failing any unit test:
//
//   - map iteration order reaching a returned slice (Go randomizes range
//     order per execution, so scores and row sets reorder between runs);
//   - wall-clock reads (time.Now and friends);
//   - non-injected randomness (global math/rand, crypto/rand).
//
// The analyzer walks every function body in this module, records a
// *"nondeterministic"* object fact (with a human-readable reason chain)
// for each function that exhibits one of the leaks directly or calls —
// possibly through other packages, via analysis.Fact propagation — a
// function that does, and reports a diagnostic at every *root* function
// (by default: Measure, Detect, DetectAll, Predict, Train and LR — the
// Detector metric entry points and the online scoring path) whose body is
// tainted.
//
// Map-range taint is dataflow-aware but syntactic: ranging over a map is
// fine per se (building another map, or counting into integers, commutes);
// what taints is appending to a slice that reaches the function's return
// values without an intervening sort (sort.*, slices.Sort*, or a
// project-level Sort* helper), or accumulating a float in map order
// (float addition does not commute in the last ulp). Calls through
// interfaces cannot be resolved statically and are trusted; the concrete
// implementations behind them are exactly the Measure roots this analyzer
// checks directly.
package deterministic

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

var (
	rootsFlag = `^(Measure|Detect|DetectAll|Predict|Train|LR)$`
	modsFlag  = "github.com/unidetect/unidetect"
	trustFlag = "github.com/unidetect/unidetect/internal/obs"
	allFlag   = false
)

// Analyzer proves determinism of metric-path functions via fact
// propagation.
var Analyzer = &analysis.Analyzer{
	Name:      "deterministic",
	Doc:       "prove detector metric paths deterministic: no map-order leaks, wall-clock reads, or non-injected randomness",
	Run:       run,
	FactTypes: []analysis.Fact{new(isNondet)},
}

func init() {
	Analyzer.Flags.StringVar(&rootsFlag, "roots", rootsFlag,
		"regexp of function names that must be deterministic (the metric-path entry points)")
	Analyzer.Flags.StringVar(&modsFlag, "mods", modsFlag,
		"comma-separated module prefixes whose packages are analyzed")
	Analyzer.Flags.StringVar(&trustFlag, "trust", trustFlag,
		"comma-separated packages trusted on metric paths: their functions are audited to read time only through an injectable clock, so calls into them do not taint callers")
	Analyzer.Flags.BoolVar(&allFlag, "all", allFlag,
		"analyze every package regardless of module prefix (testing)")
}

// isNondet marks a function that may behave nondeterministically; Reason
// is a human-readable taint chain ("calls x, which ranges over a map...").
type isNondet struct{ Reason string }

func (*isNondet) AFact()           {}
func (f *isNondet) String() string { return "nondeterministic: " + f.Reason }

// nondetCalls maps std functions that are nondeterministic by contract.
// Global math/rand draws are handled separately (any package-level func
// except the New* constructors).
var nondetCalls = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"crypto/rand": {"*": "draws OS randomness"},
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	rootsRx, err := regexp.Compile(rootsFlag)
	if err != nil {
		return nil, err
	}

	// Pass 1: per function, direct taint reasons and intra-package callees.
	type funcInfo struct {
		decl    *ast.FuncDecl
		obj     *types.Func
		reasons []string
		callees []*types.Func
	}
	var funcs []*funcInfo
	byObj := map[*types.Func]*funcInfo{}
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd, obj: obj}
			fi.reasons = directTaints(pass, fd)
			fi.callees = callees(pass, fd)
			funcs = append(funcs, fi)
			byObj[obj] = fi
		}
	}

	// Taint state: local reasons plus facts imported from dependencies.
	taintOf := func(fn *types.Func) (string, bool) {
		if fi, ok := byObj[fn]; ok && len(fi.reasons) > 0 {
			return fi.reasons[0], true
		}
		var fact isNondet
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Reason, true
		}
		return "", false
	}

	// Pass 2: propagate through the intra-package call graph to a fixed
	// point (taint only grows, so this terminates).
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if len(fi.reasons) > 0 {
				continue
			}
			for _, callee := range fi.callees {
				if callee == fi.obj {
					continue
				}
				if reason, bad := taintOf(callee); bad {
					fi.reasons = append(fi.reasons,
						clip(fmt.Sprintf("calls %s, which %s", callee.Name(), reason)))
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: export facts and report tainted roots.
	for _, fi := range funcs {
		if len(fi.reasons) == 0 {
			continue
		}
		sort.Strings(fi.reasons)
		reason := fi.reasons[0]
		pass.ExportObjectFact(fi.obj, &isNondet{Reason: reason})
		if rootsRx.MatchString(fi.obj.Name()) {
			pass.Reportf(fi.decl.Name.Pos(),
				"%s is a determinism root (metric path) but %s", fi.obj.Name(), reason)
		}
	}
	return nil, nil
}

// directTaints returns the nondeterminism leaks evident in fd's own body:
// denylisted std calls, global math/rand draws, and map-iteration order
// reaching the return values.
func directTaints(pass *analysis.Pass, fd *ast.FuncDecl) []string {
	var reasons []string

	// Denylisted calls anywhere in the body (including closures).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return true
		}
		if m, ok := nondetCalls[path]; ok {
			if r, ok := m[sel.Sel.Name]; ok {
				reasons = append(reasons, fmt.Sprintf("calls %s.%s, which %s", path, sel.Sel.Name, r))
			} else if r, ok := m["*"]; ok {
				reasons = append(reasons, fmt.Sprintf("calls %s.%s, which %s", path, sel.Sel.Name, r))
			}
		}
		if (path == "math/rand" || path == "math/rand/v2") && !strings.HasPrefix(sel.Sel.Name, "New") {
			reasons = append(reasons, fmt.Sprintf("calls global %s.%s (non-injected randomness)", path, sel.Sel.Name))
		}
		return true
	})

	// Map-order leaks, per function-like unit (the decl body and each
	// closure get their own return set).
	for _, u := range splitUnits(fd) {
		reasons = append(reasons, u.mapOrderLeaks(pass)...)
	}
	return reasons
}

// unit is one function-like body: the FuncDecl itself or a closure.
type unit struct {
	body    *ast.BlockStmt
	ftype   *ast.FuncType
	nested  map[ast.Node]bool // FuncLits whose bodies belong to inner units
	returns []ast.Expr        // result expressions of this unit's returns
}

// splitUnits partitions fd's body into per-function units.
func splitUnits(fd *ast.FuncDecl) []*unit {
	var units []*unit
	var mk func(body *ast.BlockStmt, ftype *ast.FuncType)
	mk = func(body *ast.BlockStmt, ftype *ast.FuncType) {
		u := &unit{body: body, ftype: ftype, nested: map[ast.Node]bool{}}
		units = append(units, u)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				u.nested[n] = true
				mk(n.Body, n.Type)
				return false
			case *ast.ReturnStmt:
				u.returns = append(u.returns, n.Results...)
			}
			return true
		})
	}
	mk(fd.Body, fd.Type)
	return units
}

// inspectOwn walks the unit's own body, skipping nested closures.
func (u *unit) inspectOwn(f func(ast.Node) bool) {
	ast.Inspect(u.body, func(n ast.Node) bool {
		if u.nested[n] {
			return false
		}
		return f(n)
	})
}

// accum is one order-sensitive accumulation inside a map-range loop.
type accum struct {
	target string // canonical expression text of the accumulation target
	pos    token.Pos
	kind   string // "appends to" or "accumulates float"
}

// mapOrderLeaks reports map-range loops whose iteration order reaches the
// unit's return values without an intervening sort.
func (u *unit) mapOrderLeaks(pass *analysis.Pass) []string {
	type sortCall struct {
		argText string
		pos     token.Pos
	}
	var sorts []sortCall
	type loop struct {
		end    token.Pos
		accums []accum
	}
	var loops []*loop

	u.inspectOwn(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isSortCall(pass, n) {
				var args []string
				for _, a := range n.Args {
					args = append(args, exprText(a))
				}
				sorts = append(sorts, sortCall{argText: strings.Join(args, ","), pos: n.Pos()})
			}
		case *ast.RangeStmt:
			if !isMapType(pass, n.X) {
				return true
			}
			lp := &loop{end: n.End()}
			loops = append(loops, lp)
			// Collect accumulations in the loop body (nested closures
			// excluded: a closure defined in the loop runs later, when
			// order is already fixed by its caller).
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if u.nested[m] {
					return false
				}
				as, ok := m.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 {
					return true
				}
				lhs := as.Lhs[0]
				switch lhs.(type) {
				case *ast.Ident, *ast.SelectorExpr:
				default:
					return true // index/star targets: not order-carrying
				}
				target := exprText(lhs)
				switch as.Tok {
				case token.ASSIGN, token.DEFINE:
					if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
							lp.accums = append(lp.accums, accum{target: target, pos: as.Pos(), kind: "appends to"})
						}
					}
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					if isFloatExpr(pass, lhs) {
						lp.accums = append(lp.accums, accum{target: target, pos: as.Pos(), kind: "accumulates float"})
					}
				}
				return true
			})
			return true
		}
		return true
	})

	var reasons []string
	for _, lp := range loops {
		for _, ac := range lp.accums {
			if !u.reachesOutput(ac.target) {
				continue
			}
			sorted := false
			for _, sc := range sorts {
				if sc.pos > lp.end && strings.Contains(sc.argText, ac.target) {
					sorted = true
					break
				}
			}
			if !sorted {
				reasons = append(reasons, fmt.Sprintf(
					"ranges over a map and %s %q, which reaches the return value without an intervening sort",
					ac.kind, ac.target))
			}
		}
	}
	return reasons
}

// reachesOutput reports whether target (an expression string like "out"
// or "st.rows") can flow into the unit's results: it is returned, its
// root is returned, or its root is a named result.
func (u *unit) reachesOutput(target string) bool {
	root := target
	if i := strings.IndexByte(root, '.'); i >= 0 {
		root = root[:i]
	}
	for _, r := range u.returns {
		t := strings.TrimPrefix(exprText(r), "&")
		if t == target || t == root {
			return true
		}
	}
	if u.ftype.Results != nil {
		for _, field := range u.ftype.Results.List {
			for _, name := range field.Names {
				if name.Name == root {
					return true
				}
			}
		}
	}
	return false
}

// isSortCall recognizes sort.* / slices.Sort* and project-level Sort*
// helpers (e.g. core.SortFindings).
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				p := pn.Imported().Path()
				if p == "sort" || p == "slices" {
					return true
				}
			}
		}
		return strings.HasPrefix(fun.Sel.Name, "Sort")
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "Sort")
	}
	return false
}

// callees returns the statically resolvable functions fd calls: package
// functions and methods with concrete receivers. Interface method calls
// resolve to nil concrete functions and are skipped, as are calls into
// -trust packages: the observability layer reads time only through its
// injectable Clock (put on testkit.VirtualClock, instrumented chaos runs
// stay byte-deterministic — the property its own tests pin), so
// instrumenting a metric-path function must not taint it. The trust is
// scoped to the named packages, not granted per call site, so there are
// no blanket //lint:ignore suppressions to rot on metric paths.
func callees(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[fun]; ok {
				// Method call: skip interface dispatch (unresolvable).
				if types.IsInterface(sel.Recv()) {
					return true
				}
			}
			obj = pass.TypesInfo.Uses[fun.Sel]
		default:
			return true
		}
		if fn, ok := obj.(*types.Func); ok && !seen[fn] && !trusted(fn) {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// trusted reports whether fn is defined in a -trust package.
func trusted(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, p := range strings.Split(trustFlag, ",") {
		if p = strings.TrimSpace(p); p != "" && pkg.Path() == p {
			return true
		}
	}
	return false
}

func isMapType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isFloatExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// exprText renders simple expressions (idents, selector chains) to a
// canonical string; complex expressions get a best-effort rendering that
// only needs to be self-consistent within one function.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[" + exprText(e.Index) + "]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("%T", e)
	}
}

// clip bounds reason-chain growth through deep call chains.
func clip(s string) string {
	const max = 220
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}

func applies(pkgPath string) bool {
	if allFlag {
		return true
	}
	for _, prefix := range strings.Split(modsFlag, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix != "" && (pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")) {
			return true
		}
	}
	return false
}
