package deterministic_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/deterministic"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer exercised by the "suppressed" pattern.
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

func TestDeterministic(t *testing.T) {
	// Testdata packages ("a", "b", ...) are outside the module prefix the
	// analyzer scopes itself to under go vet; lift the scoping for the test.
	if err := deterministic.Analyzer.Flags.Set("all", "true"); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, analysistest.TestData(), deterministic.Analyzer, "a", "clean", "suppressed")
}
