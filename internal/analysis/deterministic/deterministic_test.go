package deterministic_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/deterministic"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer exercised by the "suppressed" pattern.
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

func TestDeterministic(t *testing.T) {
	// Testdata packages ("a", "b", ...) are outside the module prefix the
	// analyzer scopes itself to under go vet; lift the scoping for the test.
	if err := deterministic.Analyzer.Flags.Set("all", "true"); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, analysistest.TestData(), deterministic.Analyzer, "a", "clean", "suppressed")
}

func TestDeterministicTrust(t *testing.T) {
	for flag, val := range map[string]string{"all": "true", "trust": "obspkg"} {
		if err := deterministic.Analyzer.Flags.Set(flag, val); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		if err := deterministic.Analyzer.Flags.Set("trust",
			"github.com/unidetect/unidetect/internal/obs"); err != nil {
			t.Fatal(err)
		}
	}()
	// Package trusted instruments its Measure root through obspkg's
	// wall-clock registry: with obspkg trusted the root stays clean,
	// while a wall-clock read outside the trusted package still taints.
	analysistest.Run(t, analysistest.TestData(), deterministic.Analyzer, "trusted")
}
