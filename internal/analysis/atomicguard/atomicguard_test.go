package atomicguard_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/atomicguard"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer exercised by the "suppressed" pattern.
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

// setFlags lifts the module scoping: testdata packages live outside the
// unidetect module prefix.
func setFlags(t *testing.T) {
	t.Helper()
	if err := atomicguard.Analyzer.Flags.Set("all", "true"); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicguard(t *testing.T) {
	setFlags(t)
	analysistest.Run(t, analysistest.TestData(), atomicguard.Analyzer,
		"a", "clean", "suppressed", "xapkg")
}

// TestAtomicguardFixes applies the plain-read → atomic.LoadInt64
// SuggestedFix, compares the golden result, and proves the fixed source
// re-lints clean.
func TestAtomicguardFixes(t *testing.T) {
	setFlags(t)
	analysistest.RunWithFixes(t, analysistest.TestData(), atomicguard.Analyzer, "fixable")
}
