// Package fixable carries the mechanical-fix case: a plain read of an
// atomically-updated int64 field in a file that already imports
// sync/atomic, rewritten to the matching atomic.LoadInt64.
package fixable

import "sync/atomic"

type box struct{ n int64 }

func (b *box) inc() { atomic.AddInt64(&b.n, 1) }

func (b *box) get() int64 {
	return b.n // want `plain read of n, which is accessed atomically \(fixable\.go:10\); use the matching atomic load`
}
