// Package xadep is the dependency side of the cross-package fixture:
// its atomic use of Stats.Hits exports an atomicUse fact, so dependents
// that touch the field plainly are flagged at their own site.
package xadep

import "sync/atomic"

type Stats struct{ Hits int64 }

func (s *Stats) Bump() { atomic.AddInt64(&s.Hits, 1) }
