// Package clean holds the disciplined counterparts: consistent
// sync/atomic access, typed atomics used through their methods, the
// local construction window, and init-time stores.
package clean

import "sync/atomic"

type counter struct {
	hits int64
	mode int // plain everywhere: never atomic, never flagged
}

var total int64

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&total, 1)
}

func (c *counter) report() int64 {
	n := atomic.LoadInt64(&c.hits)
	atomic.StoreInt64(&c.hits, 0)
	c.mode = 2
	return n + int64(c.mode) + atomic.LoadInt64(&total)
}

type gauge struct{ flag atomic.Bool }

func (g *gauge) set() { g.flag.Store(true) }

func (g *gauge) get() bool { return g.flag.Load() }

// passByPointer hands the typed atomic on by pointer — no copy.
func passByPointer(g *gauge) *atomic.Bool { return &g.flag }

// construct fills an instance before anything can see it; the plain
// stores are the idiomatic lock-free window.
func construct() *counter {
	c := &counter{}
	c.hits = 3
	c.hits++
	return c
}

func init() {
	total = 1
}
