// Package a exercises every atomicguard misuse class: plain reads and
// writes of sync/atomic-observed fields and package vars, escaping
// addresses, typed atomic copies, and the flow-sensitive publication
// window on locals.
package a

import "sync/atomic"

type counter struct {
	hits int64
	cold int64 // never touched atomically: plain access stays silent
}

var total int64

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&total, 1)
}

func (c *counter) report() int64 {
	n := c.hits // want `plain read of hits, which is accessed atomically \(a\.go:17\); use the matching atomic load`
	c.hits = 0  // want `plain write to hits, which is accessed atomically \(a\.go:17\); use the matching atomic store`
	total++     // want `plain write to total, which is accessed atomically \(a\.go:18\)`
	p := &c.hits // want `address of hits escapes outside sync/atomic, but hits is accessed atomically \(a\.go:17\)`
	_ = p
	return n + c.cold
}

type gauge struct{ flag atomic.Bool }

func (g *gauge) set() { g.flag.Store(true) }

// snapshot copies the atomic value out of the struct.
func (g *gauge) snapshot() atomic.Bool {
	return g.flag // want `flag is a sync/atomic value; copying it races with its atomic users`
}

// fresh exercises the publication window: plain stores to a local that
// nothing else can see are the idiomatic lock-free construction, but
// the same store after register(c) has published it is a race.
func fresh() *counter {
	c := &counter{}
	c.hits = 5 // unpublished local: silent
	register(c)
	c.hits = 6 // want `plain write to hits, which is accessed atomically \(a\.go:17\)`
	return c
}

func register(*counter) {}

// leak exercises goroutine capture: the closure publishes n, so the
// outer plain accesses race with the atomic add inside it.
func leak() int64 {
	var n int64
	go func() { atomic.AddInt64(&n, 1) }()
	n++      // want `plain write to n, which is accessed atomically \(a\.go:56\)`
	return n // want `plain read of n, which is accessed atomically \(a\.go:56\)`
}

func init() {
	total = 7 // init runs before publication: silent
}
