// Package suppressed proves //lint:ignore atomicguard swallows a
// diagnostic (with its reason on record) while the unsuppressed sibling
// still fires — and that the analyzer remains live in the package.
package suppressed

import "sync/atomic"

var epoch int64

func tick() { atomic.AddInt64(&epoch, 1) }

func read() int64 {
	//lint:ignore atomicguard read is reconciled by the snapshot barrier
	a := epoch
	b := epoch // want `plain read of epoch, which is accessed atomically \(suppressed\.go:10\)`
	return a + b
}
