// Package xapkg is the dependent side of the cross-package fixture: it
// never imports sync/atomic itself, yet the fact riding the dependency
// marks Stats.Hits atomic and the plain read is flagged here.
package xapkg

import "xadep"

func Read(s *xadep.Stats) int64 {
	s.Bump()
	return s.Hits // want `plain read of Hits, which is accessed atomically \(xadep\.go:10\)`
}
