// Package atomicguard defines an analyzer that enforces all-or-nothing
// atomicity: a variable or struct field that is ever accessed through
// sync/atomic — or declared as a typed atomic.* value — must be accessed
// atomically everywhere it is reachable after initialization. A plain
// load mixed with atomic stores is exactly the race the Go memory model
// refuses to define, and it is invisible to the race detector unless
// the schedule happens to interleave the two.
//
// ROADMAP item 1 (live model hot-swap) multiplies the atomic fast paths
// PR 6 introduced (metricsReady, the lrindex atomic.Pointer, the
// measurement-cache ready flag); this analyzer makes their access
// discipline a compile-time contract, the same move hotalloc made for
// allocations.
//
// An object becomes "atomic" three ways:
//
//   - its address is passed to a sync/atomic function
//     (atomic.AddInt64(&c.hits, 1) marks c.hits);
//   - its declared type is defined in sync/atomic (atomic.Bool,
//     atomic.Pointer[T], ...), where the method set already forces
//     atomic access and the remaining sin is copying the value;
//   - a dependency exported an atomicUse fact for it: facts ride the
//     .vetx files, so a package that plainly reads a field its
//     dependency updates atomically is flagged at the offending site.
//
// Every other access to such an object is classified flow-sensitively
// on the internal/analysis/flow CFG: a plain read, plain write, or
// escaping address-of is a diagnostic unless the access happens in the
// idiomatic lock-free window — inside init functions, or through a
// function-local variable that has not yet been published (passed to a
// call, stored to a non-local, captured by a closure, sent, or
// returned) at that program point. Publication is computed by a forward
// may-analysis, so construction before publication stays silent while
// the access one line after `go func() { ... }()` captures the variable
// is flagged.
//
// Where the fix is mechanical — a plain read of an integer field with
// sync/atomic already imported — the diagnostic carries a SuggestedFix
// wrapping the read in the matching atomic.Load.
package atomicguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/unidetect/unidetect/internal/analysis/flow"
)

var (
	modsFlag = "github.com/unidetect/unidetect"
	allFlag  = false
)

// Analyzer enforces atomic-everywhere access for atomically-used objects.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicguard",
	Doc:       "flag plain reads/writes of variables and fields that are elsewhere accessed via sync/atomic (mixed access is an undefined-behavior race); facts propagate the atomic set across packages",
	Run:       run,
	FactTypes: []analysis.Fact{new(atomicUse)},
}

func init() {
	Analyzer.Flags.StringVar(&modsFlag, "mods", modsFlag,
		"comma-separated module prefixes whose packages are analyzed")
	Analyzer.Flags.BoolVar(&allFlag, "all", allFlag,
		"analyze every package regardless of module prefix (testing)")
}

// atomicUse marks an object as atomically accessed; At is the first
// observed sync/atomic site ("file.go:12"), quoted in diagnostics so a
// cross-package reader can find the other half of the race.
type atomicUse struct{ At string }

func (*atomicUse) AFact()           {}
func (f *atomicUse) String() string { return "atomicUse: " + f.At }

// pkgCtx is the per-package atomic-object index shared by every
// function unit.
type pkgCtx struct {
	pass *analysis.Pass
	// observed maps objects whose address reached a sync/atomic call to
	// that first call site.
	observed map[*types.Var]string
	// typed holds objects declared with a sync/atomic-defined type.
	typed map[*types.Var]bool
	// sanctioned holds the &x operands that are arguments of sync/atomic
	// calls — the one place taking the address is the point.
	sanctioned map[ast.Expr]bool
	// imported caches cross-package fact lookups (miss = "" entry).
	imported map[*types.Var]*string
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	ctx := &pkgCtx{
		pass:       pass,
		observed:   map[*types.Var]string{},
		typed:      map[*types.Var]bool{},
		sanctioned: map[ast.Expr]bool{},
		imported:   map[*types.Var]*string{},
	}
	ctx.collect()

	// Export the atomic set for dependents: only objects declared here
	// (a fact on another package's object is not ours to write).
	for v, site := range ctx.observed {
		if v.Pkg() == pass.Pkg {
			pass.ExportObjectFact(v, &atomicUse{At: site})
		}
	}

	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue // the init window: publication has not happened yet
			}
			ctx.checkUnit(fd.Body)
		}
	}
	return nil, nil
}

// collect indexes the package's atomic objects: sync/atomic call
// operands and typed atomic declarations.
func (c *pkgCtx) collect() {
	for _, file := range c.pass.Files {
		if isTestFile(c.pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(c.pass, call) || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			c.sanctioned[un] = true
			if v := accessedVar(c.pass, ast.Unparen(un.X)); v != nil {
				if _, seen := c.observed[v]; !seen {
					p := c.pass.Fset.Position(un.X.Pos())
					c.observed[v] = fmt.Sprintf("%s:%d", base(p.Filename), p.Line)
				}
			}
			return true
		})
	}
	for _, obj := range c.pass.TypesInfo.Defs {
		if v, ok := obj.(*types.Var); ok && isAtomicType(v.Type()) {
			c.typed[v] = true
		}
	}
}

// lookup resolves whether v is an atomic object, and how we know.
func (c *pkgCtx) lookup(v *types.Var) (site string, typed, ok bool) {
	if site, ok := c.observed[v]; ok {
		return site, false, true
	}
	if c.typed[v] {
		return "declared " + v.Type().String(), true, true
	}
	if v.Pkg() != nil && v.Pkg() != c.pass.Pkg {
		if cached, hit := c.imported[v]; hit {
			if *cached == "" {
				return "", false, false
			}
			return *cached, false, true
		}
		var fact atomicUse
		site := ""
		if c.pass.ImportObjectFact(v, &fact) {
			site = fact.At
		}
		c.imported[v] = &site
		if site != "" {
			return site, false, true
		}
	}
	return "", false, false
}

// accessKind classifies one use of an atomic object.
type accessKind int

const (
	accessOK accessKind = iota
	accessRead
	accessWrite
	accessAddr
)

// checkUnit analyzes one function (or function-literal) body: a forward
// publication analysis over the CFG, then per-program-point access
// classification. Nested literals are their own units — a closure runs
// on an unknown schedule, so captured variables count as published in
// both the outer unit (from the capture point on) and the literal.
func (c *pkgCtx) checkUnit(body *ast.BlockStmt) {
	parents := buildParents(body)
	lat := pubLattice{pass: c.pass, lo: body.Pos(), hi: body.End()}
	g := flow.New(body)
	st := flow.Solve[pubState](g, lat)
	var lits []*ast.FuncLit
	st.Walk(g, lat, func(_ *flow.Block, n ast.Node, atExit bool, before pubState) {
		if atExit {
			return // a replayed deferred call was classified at registration
		}
		for _, t := range flow.Targets(n) {
			ast.Inspect(t, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok {
					lits = append(lits, lit)
					return false
				}
				c.candidate(m, parents, lat, before)
				return true
			})
		}
	})
	for _, lit := range lits {
		c.checkUnit(lit.Body)
	}
}

// candidate reports m if it is a misused access of an atomic object.
func (c *pkgCtx) candidate(m ast.Node, parents map[ast.Node]ast.Node, lat pubLattice, before pubState) {
	var e ast.Expr
	var id *ast.Ident
	switch m := m.(type) {
	case *ast.SelectorExpr:
		e, id = m, m.Sel
	case *ast.Ident:
		// Selector .Sel idents are handled at the SelectorExpr; composite
		// literal field keys name the field without accessing it.
		if sel, ok := parents[m].(*ast.SelectorExpr); ok && sel.Sel == m {
			return
		}
		if kv, ok := parents[m].(*ast.KeyValueExpr); ok && kv.Key == m {
			if cl, ok := parents[kv].(*ast.CompositeLit); ok && isStructLit(c.pass, cl) {
				return
			}
		}
		e, id = m, m
	default:
		return
	}
	v, _ := c.pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		return
	}
	site, typed, ok := c.lookup(v)
	if !ok {
		return
	}
	kind := classify(e, parents, c.sanctioned, typed)
	if kind == accessOK {
		return
	}
	// The lock-free construction window: an access rooted at a local
	// that nothing else can see yet.
	if root := rootIdent(e); root != nil {
		if lv := lat.localVar(root); lv != nil && !before[lv] {
			return
		}
	}
	c.report(e, v, site, typed, kind)
}

// classify walks e's parent chain to decide how the object is used.
func classify(e ast.Expr, parents map[ast.Node]ast.Node, sanctioned map[ast.Expr]bool, typed bool) accessKind {
	p := parents[e]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		e, p = pe, parents[pe]
	}
	switch p := p.(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			if typed || sanctioned[p] {
				return accessOK // &x feeding sync/atomic, or a *atomic.T pass
			}
			return accessAddr
		}
	case *ast.SelectorExpr:
		if p.X == e && typed {
			return accessOK // method access: g.flag.Store(true)
		}
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == e {
				return accessWrite
			}
		}
	case *ast.IncDecStmt:
		if p.X == e {
			return accessWrite
		}
	case *ast.RangeStmt:
		if p.Key == e || p.Value == e {
			return accessWrite
		}
	}
	return accessRead
}

// report emits the diagnostic for one misuse.
func (c *pkgCtx) report(e ast.Expr, v *types.Var, site string, typed bool, kind accessKind) {
	name := v.Name()
	switch {
	case typed && kind == accessWrite:
		c.pass.Reportf(e.Pos(),
			"%s is a sync/atomic value and must not be reassigned; use its Store method", name)
	case typed:
		c.pass.Reportf(e.Pos(),
			"%s is a sync/atomic value; copying it races with its atomic users — operate through its methods", name)
	case kind == accessAddr:
		c.pass.Reportf(e.Pos(),
			"address of %s escapes outside sync/atomic, but %s is accessed atomically (%s); every access must go through sync/atomic", name, name, site)
	case kind == accessWrite:
		c.pass.Reportf(e.Pos(),
			"plain write to %s, which is accessed atomically (%s); use the matching atomic store", name, site)
	default:
		c.pass.Report(analysis.Diagnostic{
			Pos: e.Pos(),
			Message: fmt.Sprintf(
				"plain read of %s, which is accessed atomically (%s); use the matching atomic load", name, site),
			SuggestedFixes: c.loadFix(e),
		})
	}
}

// loadFix wraps a plain integer read in the matching atomic.Load call,
// when the file already imports sync/atomic (a text edit cannot add
// imports — the same gate floatcompare and hotalloc use).
func (c *pkgCtx) loadFix(e ast.Expr) []analysis.SuggestedFix {
	b, ok := c.pass.TypesInfo.TypeOf(e).Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var fn string
	switch b.Kind() {
	case types.Int32:
		fn = "LoadInt32"
	case types.Int64:
		fn = "LoadInt64"
	case types.Uint32:
		fn = "LoadUint32"
	case types.Uint64:
		fn = "LoadUint64"
	case types.Uintptr:
		fn = "LoadUintptr"
	default:
		return nil
	}
	q, ok := importQualifier(c.pass, e.Pos(), "sync/atomic")
	if !ok {
		return nil
	}
	return []analysis.SuggestedFix{{
		Message: fmt.Sprintf("load atomically with %s.%s", q, fn),
		TextEdits: []analysis.TextEdit{
			{Pos: e.Pos(), End: e.Pos(), NewText: []byte(q + "." + fn + "(&")},
			{Pos: e.End(), End: e.End(), NewText: []byte(")")},
		},
	}}
}

// --- publication dataflow -------------------------------------------------

// pubState is the set of unit-local variables that have been published
// (could be visible to another goroutine) at a program point. The
// lattice is a may-analysis: join is union, so "published on some path"
// means published.
type pubState map[*types.Var]bool

// pubLattice computes publication over one function unit. lo/hi bound
// the unit's body: a variable declared inside is local, everything else
// (receivers, parameters, package vars, captures from an enclosing
// unit) is born published.
type pubLattice struct {
	pass   *analysis.Pass
	lo, hi token.Pos
}

func (pubLattice) Entry() pubState { return pubState{} }

func (pubLattice) Join(a, b pubState) pubState {
	out := pubState{}
	for v := range a {
		out[v] = true
	}
	for v := range b {
		out[v] = true
	}
	return out
}

func (pubLattice) Equal(a, b pubState) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func (l pubLattice) Transfer(n ast.Node, atExit bool, s pubState) pubState {
	if atExit {
		return s
	}
	vars := l.pubEvents(n)
	if len(vars) == 0 {
		return s
	}
	out := pubState{}
	for v := range s {
		out[v] = true
	}
	for _, v := range vars {
		out[v] = true
	}
	return out
}

// localVar resolves id to a variable declared inside the unit body.
func (l pubLattice) localVar(id *ast.Ident) *types.Var {
	obj := l.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = l.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pos() < l.lo || v.Pos() >= l.hi {
		return nil
	}
	return v
}

// pubEvents collects the unit-locals n publishes: passed to a call,
// stored through a non-local left-hand side, captured by a function
// literal, sent on a channel, or returned.
func (l pubLattice) pubEvents(n ast.Node) []*types.Var {
	var out []*types.Var
	addAll := func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v := l.localVar(id); v != nil {
					out = append(out, v)
				}
			}
			return true
		})
	}
	for _, t := range flow.Targets(n) {
		ast.Inspect(t, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				addAll(m.Body) // capture is publication: the closure's schedule is unknown
				return false
			case *ast.CallExpr:
				if isAtomicCall(l.pass, m) {
					// The sanctioned access itself: &x does not outlive the call.
					return false
				}
				addAll(m.Fun)
				for _, a := range m.Args {
					addAll(a)
				}
				return false
			case *ast.AssignStmt:
				nonlocal := false
				for _, lhs := range m.Lhs {
					root := rootIdent(lhs)
					if root == nil {
						nonlocal = true // deref/index through an unknown base
						continue
					}
					if root.Name != "_" && l.localVar(root) == nil {
						nonlocal = true
					}
				}
				if nonlocal {
					for _, r := range m.Rhs {
						addAll(r)
					}
				}
				return true
			case *ast.SendStmt:
				addAll(m.Value)
				return true
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					addAll(r)
				}
				return true
			}
			return true
		})
	}
	return out
}

// --- shared helpers -------------------------------------------------------

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// rootIdent unwraps parens, derefs, selectors and index expressions to
// the base identifier, or nil for computed bases.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// accessedVar resolves the object an lvalue expression denotes.
func accessedVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		v, _ := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := pass.TypesInfo.Uses[e].(*types.Var)
		return v
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// isAtomicType reports whether t is declared in sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func isStructLit(pass *analysis.Pass, cl *ast.CompositeLit) bool {
	t := pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Struct)
	return ok
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// importQualifier returns the local name under which the file containing
// pos imports path.
func importQualifier(pass *analysis.Pass, pos token.Pos, path string) (string, bool) {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, imp := range f.Imports {
				if strings.Trim(imp.Path.Value, `"`) != path {
					continue
				}
				if imp.Name != nil {
					return imp.Name.Name, true
				}
				return path[strings.LastIndexByte(path, '/')+1:], true
			}
		}
	}
	return "", false
}

func base(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}

func applies(pkgPath string) bool {
	if allFlag {
		return true
	}
	for _, prefix := range strings.Split(modsFlag, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix != "" && (pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")) {
			return true
		}
	}
	return false
}
