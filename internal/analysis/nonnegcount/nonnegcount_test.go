package nonnegcount_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/nonnegcount"
)

func TestNonNegCount(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nonnegcount.Analyzer, "a", "clean")
}
