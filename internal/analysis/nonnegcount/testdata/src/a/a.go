// Package a exercises nonnegcount's positive cases: unclamped integer
// subtraction on count-like values.
package a

type grid struct {
	Counts []int64
	Total  int64
}

func delta(g grid, expected int64) int64 {
	return g.Total - expected // want `raw subtraction on count-like values can underflow`
}

func cellDelta(g grid, i int, seen int64) int64 {
	return g.Counts[i] - seen // want `raw subtraction on count-like values can underflow`
}

func drain(g *grid, n int64) {
	g.Total -= n // want `-= on count-like values can underflow`
}

func localNames(rowCount, headerCount int) int {
	return rowCount - headerCount // want `raw subtraction on count-like values can underflow`
}

func freq(histogram []int, i, smoothing int) int {
	return histogram[i] - smoothing // want `raw subtraction on count-like values can underflow`
}
