// Package clean exercises nonnegcount's accepted forms: visible clamps,
// saturating helpers, len() arithmetic, floats, and non-count names.
package clean

type grid struct {
	Counts []int64
	Total  int64
}

func clamped(g grid, expected int64) int64 {
	return max(0, g.Total-expected)
}

func viaHelper(g grid, expected int64) int64 {
	return clampNonNeg(g.Total - expected)
}

func clampNonNeg(x int64) int64 {
	if x < 0 {
		return 0
	}
	return x
}

func lastBin(counts []int64) int {
	return len(counts) - 1 // len() is an index bound, not a tally
}

func floats(countRate, base float64) float64 {
	return countRate - base // floats are floatcompare's territory
}

func plain(a, b int) int {
	return a - b // no count-like name involved
}
