// Package nonnegcount defines an analyzer that flags raw integer
// subtraction involving count and histogram values.
//
// Uni-Detect's likelihood ratio is built from corpus counts: grid cells,
// token-prevalence tallies, row/support counts. These are non-negative by
// construction, but Go's int subtraction is not — `seen - expected` on
// counts that were clamped, sampled or merged along different paths can go
// negative, and a negative count flows straight into a log-ratio where it
// flips the sign of the LR statistic (or panics in math.Log) far from the
// subtraction that caused it.
//
// The analyzer flags `a - b` and `a -= b` on integer operands when either
// side mentions a count-like name (matching -nonnegcount.names). A
// subtraction is accepted when it is visibly saturated at zero: written as
// an argument of the max builtin together with a 0 literal
// (`max(0, a-b)`), or passed to a helper whose name matches
// -nonnegcount.clampers (e.g. subNonNeg, clampNonNeg, saturatingSub).
// Test files are skipped; fixtures legitimately construct arbitrary
// deltas.
package nonnegcount

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var (
	names    = `(?i)(count|total|freq|hist|support|tally|prevalence)`
	clampers = `(?i)(clamp|nonneg|saturat)`
)

// Analyzer flags unclamped integer subtraction on count-like values.
var Analyzer = &analysis.Analyzer{
	Name:     "nonnegcount",
	Doc:      "flag raw int subtraction on count/histogram values where underflow would flip an LR sign",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&names, "names", names,
		"regexp of identifiers treated as count-like")
	Analyzer.Flags.StringVar(&clampers, "clampers", clampers,
		"regexp of saturating-helper function names that make a subtraction safe")
}

func run(pass *analysis.Pass) (interface{}, error) {
	nameRx, err := regexp.Compile(names)
	if err != nil {
		return nil, err
	}
	clampRx, err := regexp.Compile(clampers)
	if err != nil {
		return nil, err
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.BinaryExpr)(nil),
		(*ast.AssignStmt)(nil),
	}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		if isTestFile(pass, n.Pos()) {
			return false
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op != token.SUB {
				return true
			}
			if !isInt(pass, e.X) || !isInt(pass, e.Y) {
				return true
			}
			if !mentionsCount(e.X, nameRx) && !mentionsCount(e.Y, nameRx) {
				return true
			}
			if saturated(pass, stack, clampRx) {
				return true
			}
			pass.Reportf(e.OpPos, "raw subtraction on count-like values can underflow and flip an LR sign; clamp with max(0, ...) or a %s helper", "saturating")
		case *ast.AssignStmt:
			if e.Tok != token.SUB_ASSIGN || len(e.Lhs) != 1 {
				return true
			}
			if !isInt(pass, e.Lhs[0]) {
				return true
			}
			if !mentionsCount(e.Lhs[0], nameRx) && !mentionsCount(e.Rhs[0], nameRx) {
				return true
			}
			pass.Reportf(e.TokPos, "-= on count-like values can underflow and flip an LR sign; subtract via max(0, ...) into a fresh value")
		}
		return true
	})
	return nil, nil
}

// saturated reports whether the innermost enclosing call visibly clamps
// the subtraction: max(..., 0, ...) or a helper matching clampRx.
func saturated(pass *analysis.Pass, stack []ast.Node, clampRx *regexp.Regexp) bool {
	// stack[len-1] is the BinaryExpr itself; look for a CallExpr parent
	// with only parens in between.
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			switch fun := p.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "max" && hasZeroArg(pass, p) {
					return true
				}
				if clampRx.MatchString(fun.Name) {
					return true
				}
			case *ast.SelectorExpr:
				if clampRx.MatchString(fun.Sel.Name) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

func hasZeroArg(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if tv, ok := pass.TypesInfo.Types[a]; ok && tv.Value != nil && tv.Value.String() == "0" {
			return true
		}
	}
	return false
}

// mentionsCount walks an operand looking for an identifier or selector
// field whose name is count-like. len(...) calls are opaque: a slice
// length is an index bound, not an accumulated tally, and `len(xs) - 1`
// is the ubiquitous last-index idiom.
func mentionsCount(e ast.Expr, rx *regexp.Regexp) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "len" {
				return false
			}
		case *ast.Ident:
			if rx.MatchString(x.Name) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if rx.MatchString(x.Sel.Name) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func isInt(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
