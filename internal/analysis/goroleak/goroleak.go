// Package goroleak defines an analyzer that flags goroutines launched
// with no visible join path.
//
// The mapreduce runtime and the serving daemon launch goroutines on every
// corpus pass and every request; a goroutine that nothing waits for
// outlives its call, keeps its captured shards reachable, and — under the
// daemon's request churn — accumulates into an unbounded leak that no
// unit test notices. A goroutine is considered joined if its body
// visibly participates in any of the standard rendezvous idioms:
//
//   - it calls <something>.Done() — a sync.WaitGroup the caller Waits on,
//     or it selects/receives on a ctx.Done() channel, so cancellation
//     reaches it;
//   - it sends on or closes a channel — a reader can drain it to
//     completion;
//   - it receives from a channel — the sender controls its lifetime by
//     closing.
//
// Bodies with none of these markers run until they return on their own,
// with nothing to bound when that happens. For `go f(x)` with a named
// function declared in the same package, f's body is scanned; calls into
// other packages cannot be inspected and are trusted.
//
// Like seededrand, the analyzer scopes itself to the packages where the
// invariant is policy (-packages, default internal/mapreduce, the
// serving tier and its async job workers): tests and one-shot CLI
// paths may legitimately fire and forget.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

var packagesFlag = "internal/mapreduce,cmd/unidetectd,internal/serving,internal/jobstore"

// Analyzer flags goroutines with no WaitGroup/channel/ctx join path.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "flag goroutines launched without a WaitGroup, channel, or context join path",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages", packagesFlag,
		"comma-separated package path suffixes in which goroutines must have a join path")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	// Index same-package function bodies so `go f(x)` can be inspected.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, name := goBody(pass, gs, decls)
			if body == nil {
				return true // cross-package or dynamic call: trusted
			}
			if !hasJoinPath(pass, body) {
				pass.Reportf(gs.Pos(),
					"goroutine %s has no join path (no WaitGroup Done, channel send/close/receive, or ctx.Done)", name)
			}
			return true
		})
	}
	return nil, nil
}

// goBody resolves the body of the function a go statement launches: a
// function literal's own body, or the declaration of a same-package
// named function.
func goBody(pass *analysis.Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, "(func literal)"
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd, ok := decls[fn]; ok {
				return fd.Body, fn.Name()
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd, ok := decls[fn]; ok {
				return fd.Body, fn.Name()
			}
		}
	}
	return nil, ""
}

// hasJoinPath reports whether the goroutine body contains any rendezvous
// marker, including inside nested closures it calls or defers.
func hasJoinPath(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel is a receive loop: the sender joins
			// the goroutine by closing.
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func applies(pkgPath string) bool {
	for _, suffix := range strings.Split(packagesFlag, ",") {
		suffix = strings.TrimSpace(suffix)
		if suffix != "" && (pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) || strings.HasSuffix(pkgPath, suffix)) {
			return true
		}
	}
	return false
}
