package goroleak_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/goroleak"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer exercised by the "suppressed" pattern.
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

func TestGoroleak(t *testing.T) {
	// The testdata package names stand in for the real scoped packages;
	// "exempt" stays outside the list to verify scoping.
	if err := goroleak.Analyzer.Flags.Set("packages", "a,clean,suppressed"); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, analysistest.TestData(), goroleak.Analyzer, "a", "clean", "exempt", "suppressed")
}
