package suppressed

// daemon's accept loop runs for the life of the process by design.
func daemon() {
	//lint:ignore goroleak process-lifetime goroutine, exits with the daemon
	go func() {
		for {
		}
	}()
}

func clean(ch chan int) {
	//lint:ignore goroleak stale: the send below already joins it // want `unused //lint:ignore goroleak suppression`
	go func() {
		ch <- 1
	}()
}
