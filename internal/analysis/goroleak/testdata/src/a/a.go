package a

// fireAndForget launches goroutines nothing waits for.
func fireAndForget(items []int) {
	for _, i := range items {
		go func() { // want `goroutine \(func literal\) has no join path`
			work(i)
		}()
	}
}

// namedLeak launches a same-package named function with no join path.
func namedLeak() {
	go spin() // want `goroutine spin has no join path`
}

func spin() {
	for {
		work(0)
	}
}

func work(int) {}
