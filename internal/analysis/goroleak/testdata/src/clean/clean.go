package clean

import (
	"context"
	"sync"
)

// waitGroup joins its workers through wg.Done / wg.Wait.
func waitGroup(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// feeder is the mapreduce idiom: close on exit, send under select with
// ctx.Done, so both the reader and cancellation bound its lifetime.
func feeder(ctx context.Context, n int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			select {
			case out <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// drainer ranges over a channel: the sender joins it by closing.
func drainer(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}
