// Package exempt is outside the -packages list: fire-and-forget is
// tolerated here, so the leak below must not be reported.
package exempt

func fireAndForget() {
	go func() {
		for {
		}
	}()
}
