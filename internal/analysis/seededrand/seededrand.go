// Package seededrand defines an analyzer that forbids the global
// math/rand top-level functions in the packages that generate data for
// experiments.
//
// EXPERIMENTS.md promises bit-for-bit reproducible synthetic corpora:
// every table, every injected error and every train/test split must be
// derivable from a recorded seed. The global math/rand functions
// (rand.Float64, rand.Intn, rand.Shuffle, ...) draw from a process-wide
// source whose state is shared with every other caller in the binary, so
// the sequence a generator observes depends on unrelated code having run
// first — results stop being a function of the seed. Generators must take
// an injected *rand.Rand (constructed via rand.New(rand.NewSource(seed)))
// instead; those constructors remain allowed.
//
// The rule applies to the packages named by -seededrand.packages (by
// default the datagen/synth generators and the root package, which holds
// synthetic.go).
package seededrand

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var packages = "github.com/unidetect/unidetect,internal/datagen,internal/synth"

// allowed are the math/rand functions that construct an injectable
// generator rather than drawing from the global source.
var allowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Analyzer forbids global math/rand functions in data-generation packages.
var Analyzer = &analysis.Analyzer{
	Name:     "seededrand",
	Doc:      "forbid global math/rand functions in data-generation packages; inject a seeded *rand.Rand",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", packages,
		"comma-separated package path suffixes the rule applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.SelectorExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return
		}
		path := pn.Imported().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		// Only package-level functions draw from the global source; type
		// references (rand.Rand, rand.Source) and constants are fine.
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return
		}
		if allowed[sel.Sel.Name] {
			return
		}
		d := analysis.Diagnostic{
			Pos:     sel.Pos(),
			Message: fmt.Sprintf("global math/rand.%s breaks seed reproducibility; inject a *rand.Rand (rand.New(rand.NewSource(seed)))", sel.Sel.Name),
		}
		if fix, ok := injectedRandFix(pass, sel); ok {
			d.SuggestedFixes = []analysis.SuggestedFix{fix}
		}
		pass.Report(d)
	})
	return nil, nil
}

// randMethods are the top-level math/rand functions mirrored as methods
// on *rand.Rand, so `rand.X(...)` can be rewritten to `rng.X(...)`.
var randMethods = map[string]bool{
	"ExpFloat64": true, "Float32": true, "Float64": true,
	"Int": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Intn": true, "NormFloat64": true, "Perm": true,
	"Read": true, "Seed": true, "Shuffle": true,
	"Uint32": true, "Uint64": true,
}

// injectedRandFix rewrites a global draw to go through a *rand.Rand that
// is already in scope at the call site — the common leftover after a
// generator was refactored to take an injected source but a call site
// kept using the package-level function. With no such variable in scope
// there is no mechanical fix (injecting one is a design change).
func injectedRandFix(pass *analysis.Pass, sel *ast.SelectorExpr) (analysis.SuggestedFix, bool) {
	if !randMethods[sel.Sel.Name] {
		return analysis.SuggestedFix{}, false
	}
	name, ok := scopedRand(pass, sel.Pos())
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message: fmt.Sprintf("draw from the injected %s instead of the global source", name),
		TextEdits: []analysis.TextEdit{{
			Pos:     sel.X.Pos(),
			End:     sel.X.End(),
			NewText: []byte(name),
		}},
	}, true
}

// scopedRand finds a *math/rand.Rand variable visible at pos, innermost
// scope first, names in sorted order for determinism.
func scopedRand(pass *analysis.Pass, pos token.Pos) (string, bool) {
	for scope := pass.Pkg.Scope().Innermost(pos); scope != nil; scope = scope.Parent() {
		names := append([]string(nil), scope.Names()...)
		sort.Strings(names)
		for _, name := range names {
			obj := scope.Lookup(name)
			v, ok := obj.(*types.Var)
			if !ok || !isRandRand(v.Type()) {
				continue
			}
			// Inside function bodies an object is only visible after its
			// declaration.
			if v.Pos() > pos && scope != pass.Pkg.Scope() {
				continue
			}
			return name, true
		}
	}
	return "", false
}

func isRandRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	p := obj.Pkg().Path()
	return p == "math/rand" || p == "math/rand/v2"
}

func applies(pkgPath string) bool {
	for _, suffix := range strings.Split(packages, ",") {
		suffix = strings.TrimSpace(suffix)
		if suffix == "" {
			continue
		}
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) || strings.HasSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}
