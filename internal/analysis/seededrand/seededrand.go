// Package seededrand defines an analyzer that forbids the global
// math/rand top-level functions in the packages that generate data for
// experiments.
//
// EXPERIMENTS.md promises bit-for-bit reproducible synthetic corpora:
// every table, every injected error and every train/test split must be
// derivable from a recorded seed. The global math/rand functions
// (rand.Float64, rand.Intn, rand.Shuffle, ...) draw from a process-wide
// source whose state is shared with every other caller in the binary, so
// the sequence a generator observes depends on unrelated code having run
// first — results stop being a function of the seed. Generators must take
// an injected *rand.Rand (constructed via rand.New(rand.NewSource(seed)))
// instead; those constructors remain allowed.
//
// The rule applies to the packages named by -seededrand.packages (by
// default the datagen/synth generators and the root package, which holds
// synthetic.go).
package seededrand

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var packages = "github.com/unidetect/unidetect,internal/datagen,internal/synth"

// allowed are the math/rand functions that construct an injectable
// generator rather than drawing from the global source.
var allowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Analyzer forbids global math/rand functions in data-generation packages.
var Analyzer = &analysis.Analyzer{
	Name:     "seededrand",
	Doc:      "forbid global math/rand functions in data-generation packages; inject a seeded *rand.Rand",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", packages,
		"comma-separated package path suffixes the rule applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.SelectorExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return
		}
		path := pn.Imported().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		// Only package-level functions draw from the global source; type
		// references (rand.Rand, rand.Source) and constants are fine.
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return
		}
		if allowed[sel.Sel.Name] {
			return
		}
		pass.Reportf(sel.Pos(), "global math/rand.%s breaks seed reproducibility; inject a *rand.Rand (rand.New(rand.NewSource(seed)))", sel.Sel.Name)
	})
	return nil, nil
}

func applies(pkgPath string) bool {
	for _, suffix := range strings.Split(packages, ",") {
		suffix = strings.TrimSpace(suffix)
		if suffix == "" {
			continue
		}
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) || strings.HasSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}
