package seededrand_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	// Scope the rule to the positive fixture package; "exempt" and
	// "clean" stay outside the list, so "exempt" checks the scoping and
	// "clean" the allowed constructors.
	if err := seededrand.Analyzer.Flags.Set("packages", "a,clean"); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, analysistest.TestData(), seededrand.Analyzer, "a", "clean", "exempt")
}

func TestSeededRandFixes(t *testing.T) {
	// The fixture functions already take an injected *rand.Rand; the fix
	// redirects the leftover global draws through it.
	if err := seededrand.Analyzer.Flags.Set("packages", "fixable"); err != nil {
		t.Fatal(err)
	}
	analysistest.RunWithFixes(t, analysistest.TestData(), seededrand.Analyzer, "fixable")
}
