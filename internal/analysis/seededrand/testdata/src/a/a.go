// Package a exercises seededrand's positive cases: global math/rand
// functions inside a data-generation package.
package a

import "math/rand"

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle breaks seed reproducibility`
}

func pick(n int) int {
	return rand.Intn(n) // want `global math/rand\.Intn breaks seed reproducibility`
}

func noise() float64 {
	return rand.NormFloat64() // want `global math/rand\.NormFloat64 breaks seed reproducibility`
}

func reseed(seed int64) {
	rand.Seed(seed) // want `global math/rand\.Seed breaks seed reproducibility`
}
