// Package clean exercises seededrand's allowed forms: constructing and
// using an injected generator, and type references.
package clean

import "math/rand"

type gen struct {
	rng *rand.Rand
}

func newGen(seed int64) *gen {
	return &gen{rng: rand.New(rand.NewSource(seed))}
}

func (g *gen) pick(n int) int {
	return g.rng.Intn(n)
}

func (g *gen) shuffle(xs []int) {
	g.rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.1, 1, 100)
}

var _ rand.Source = rand.NewSource(1)
