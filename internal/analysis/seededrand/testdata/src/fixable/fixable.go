package fixable

import "math/rand"

// Shuffle already takes an injected source; the call site below was left
// on the global functions.
func Shuffle(rng *rand.Rand, xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle breaks seed reproducibility`
}

func Noise(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rand.NormFloat64() // want `global math/rand.NormFloat64 breaks seed reproducibility`
	}
	return out
}
