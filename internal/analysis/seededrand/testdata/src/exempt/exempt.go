// Package exempt is outside the configured package list: global rand use
// here must NOT be diagnosed (the rule targets data-generation packages).
package exempt

import "math/rand"

func jitter() float64 {
	return rand.Float64()
}
