// Package callpath is the shared cross-package call-reachability engine
// behind the hot-path analyzers (hotalloc, hotpanic).
//
// The serving contract of §2.2.3 — online prediction is metric
// computation plus a constant-time lookup — is only as good as the code
// actually reachable from the serving entry points. The engine gives an
// analyzer three reusable pieces:
//
//   - a RootSet: a parsed declaration of hot entry points
//     ("internal/core.Predictor.detectFast"), matched against *types.Func
//     objects by package-path suffix, receiver type and name, with "*"
//     wildcards for the receiver and name positions;
//
//   - a Graph: the statically resolvable intra-package call graph. Every
//     function literal is attributed to its enclosing declaration (a
//     closure runs with its creator's budget), method values and other
//     non-call references to functions are over-approximated as calls
//     (a function whose value escapes may be invoked), and interface
//     dispatch is over-approximated by method-set matching: a call
//     through interface method M adds edges to every in-package concrete
//     type implementing the interface, via its M. Calls that resolve to
//     other packages surface as cross-package edges, which analyzers
//     check against imported analysis.Facts — the same fact discipline
//     the deterministic analyzer uses, so a taint two imports away still
//     reaches the caller;
//
//   - ReachableFrom: a breadth-first walk from the in-package root
//     functions, returning for every reachable function the trace back
//     to its root (for human-readable "reachable from detectFast via
//     measureColumn" diagnostics).
//
// The engine itself reports nothing; it is a library, not an analyzer,
// and is exempt from the registry completeness check.
package callpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// DefaultHotRoots is the serving hot-root set shared by the hotalloc and
// hotpanic analyzers: the fast-path entry points of §2.2.3 serving
// (predict, measure, index lookup, string-distance scans, measurement-
// cache probes), the /v1/batch coalescer's leader path, which runs
// once per coalesced group under request latency, and the streaming
// scan path (the per-chunk driver loop plus every colstore decoder's
// Next, which runs once per chunk of an arbitrarily long stream).
// README.md ("Development") documents how to extend it.
const DefaultHotRoots = "internal/core.Predictor.detectFast," +
	"internal/core.Predictor.detectAllFast," +
	"internal/core.Predictor.measureUnit," +
	"internal/core.measureCache.get," +
	"internal/core.measureCache.getTable," +
	"internal/lrindex.Index.LR," +
	"internal/strdist.MinPairDistScratch," +
	"internal/strdist.MinPairDistCappedScratch," +
	"internal/strdist.SecondMinPairDistCappedScratch," +
	"internal/detectors.*.MeasureColumn," +
	"internal/core.Predictor.scanChunks," +
	"internal/colstore.*.Next," +
	"internal/serving.coalescer.join"

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call of a package function or a method with
	// a concrete receiver.
	EdgeStatic EdgeKind = iota
	// EdgeValue is a non-call reference to a function (method value,
	// function passed as an argument): over-approximated as a call.
	EdgeValue
	// EdgeInterface is an interface-dispatch edge resolved by in-package
	// method-set matching.
	EdgeInterface
)

// Edge is one resolved call (or call over-approximation) out of a
// function.
type Edge struct {
	Callee *types.Func
	Pos    token.Pos
	Kind   EdgeKind
}

// Node is one declared function with its body (closures included).
type Node struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	// Lits are the function literals declared (at any depth) inside
	// Decl's body, in source order. Their bodies are part of this node:
	// walking Decl.Body visits them.
	Lits []*ast.FuncLit
}

// Graph is the intra-package call graph over statically resolvable
// edges. Edges whose callee is defined in another package are kept —
// analyzers resolve them through imported facts.
type Graph struct {
	Nodes []*Node
	byObj map[*types.Func]*Node
	edges map[*types.Func][]Edge
}

// Options configures graph construction.
type Options struct {
	// IncludeTests includes _test.go files (default: excluded — tests
	// are not on the serving path).
	IncludeTests bool
}

// Build constructs the call graph of the pass's package.
func Build(pass *analysis.Pass, opt Options) *Graph {
	g := &Graph{
		byObj: map[*types.Func]*Node{},
		edges: map[*types.Func][]Edge{},
	}
	for _, file := range pass.Files {
		if !opt.IncludeTests && isTestFile(pass, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &Node{Obj: obj, Decl: fd}
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok {
					n.Lits = append(n.Lits, lit)
				}
				return true
			})
			g.Nodes = append(g.Nodes, n)
			g.byObj[obj] = n
		}
	}
	for _, n := range g.Nodes {
		g.edges[n.Obj] = g.resolve(pass, n)
	}
	return g
}

// Node returns the graph node declaring fn, or nil for functions of
// other packages.
func (g *Graph) Node(fn *types.Func) *Node { return g.byObj[fn] }

// Callees returns fn's outgoing edges, deduplicated per callee (first
// occurrence wins, in source order).
func (g *Graph) Callees(fn *types.Func) []Edge { return g.edges[fn] }

// resolve collects the edges out of one node's body (closures included,
// since they are attributed to the declaring function).
func (g *Graph) resolve(pass *analysis.Pass, n *Node) []Edge {
	var out []Edge
	seen := map[*types.Func]bool{}
	add := func(fn *types.Func, pos token.Pos, kind EdgeKind) {
		if fn == nil || fn == n.Obj || seen[fn] {
			return
		}
		seen[fn] = true
		out = append(out, Edge{Callee: fn, Pos: pos, Kind: kind})
	}
	// ast.Inspect visits a CallExpr before its Fun child, so direct
	// calls claim their callee (EdgeStatic) before the value cases see
	// the same identifier; the seen map makes the later EdgeValue
	// attempt a no-op. A function referenced only as a value (method
	// value, argument, assignment) therefore still gets exactly one
	// edge, marked EdgeValue.
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			g.resolveCall(pass, m, add)
		case *ast.Ident:
			// Package-level function referenced by name — `f := pkgFn`,
			// `helper(pkgFn)`, `f := fmt.Sprintf` (the Sel of a
			// qualified identifier is a plain use). Methods are
			// excluded here: their value uses carry a SelectorExpr
			// with a MethodVal selection, handled below.
			if fn, ok := pass.TypesInfo.Uses[m].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					add(fn, m.Pos(), EdgeValue)
				}
			}
		case *ast.SelectorExpr:
			// Method value on a concrete receiver: `f := p.measure`.
			// Interface method values stay unresolved (the interface
			// dispatch over-approximation only covers call positions).
			if sel, ok := pass.TypesInfo.Selections[m]; ok && sel.Kind() == types.MethodVal && !types.IsInterface(sel.Recv()) {
				if fn, ok := pass.TypesInfo.Uses[m.Sel].(*types.Func); ok {
					add(fn, m.Pos(), EdgeValue)
				}
			}
		}
		return true
	})
	return out
}

// resolveCall adds the edges of one call expression.
func (g *Graph) resolveCall(pass *analysis.Pass, call *ast.CallExpr, add func(*types.Func, token.Pos, EdgeKind)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			add(fn, call.Pos(), EdgeStatic)
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && types.IsInterface(sel.Recv()) {
			// Interface dispatch: over-approximate with the in-package
			// implementations of the interface.
			iface, _ := sel.Recv().Underlying().(*types.Interface)
			if iface == nil {
				return
			}
			for _, impl := range g.implementations(pass.Pkg, iface, fun.Sel.Name) {
				add(impl, call.Pos(), EdgeInterface)
			}
			return
		}
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			add(fn, call.Pos(), EdgeStatic)
		}
	}
}

// implementations returns the concrete method named name of every
// package-level named type in pkg (or pointer to it) implementing iface.
func (g *Graph) implementations(pkg *types.Package, iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	scope := pkg.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		recv := types.Type(named)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		ms := types.NewMethodSet(recv)
		for i := 0; i < ms.Len(); i++ {
			if m := ms.At(i); m.Obj().Name() == name {
				if fn, ok := m.Obj().(*types.Func); ok {
					out = append(out, fn)
				}
			}
		}
	}
	return out
}

// Trace records how a function became reachable: its root and the
// immediate caller on the breadth-first shortest path.
type Trace struct {
	Root *types.Func
	From *types.Func // nil when the function is itself a root
	Pos  token.Pos   // call position in From (NoPos for roots)
}

// ReachableFrom walks the graph breadth-first from every in-package
// function matching isRoot and returns a trace for each reachable
// function (roots included, with From == nil).
func (g *Graph) ReachableFrom(isRoot func(*types.Func) bool) map[*types.Func]*Trace {
	reach := map[*types.Func]*Trace{}
	var queue []*types.Func
	for _, n := range g.Nodes {
		if isRoot(n.Obj) {
			reach[n.Obj] = &Trace{Root: n.Obj}
			queue = append(queue, n.Obj)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.edges[fn] {
			if _, ok := reach[e.Callee]; ok {
				continue
			}
			if g.byObj[e.Callee] == nil {
				continue // other package: handled via facts, not traversal
			}
			reach[e.Callee] = &Trace{Root: reach[fn].Root, From: fn, Pos: e.Pos}
			queue = append(queue, e.Callee)
		}
	}
	return reach
}

// Describe renders a trace as a human-readable suffix for diagnostics:
// "hot root detectFast" for roots, "reachable from hot root detectFast
// via measureColumn" otherwise.
func (t *Trace) Describe() string {
	if t.From == nil {
		return "hot root " + FuncName(t.Root)
	}
	if t.From == t.Root {
		return "reachable from hot root " + FuncName(t.Root)
	}
	return fmt.Sprintf("reachable from hot root %s via %s", FuncName(t.Root), FuncName(t.From))
}

// FuncName renders fn as "Recv.Name" for methods and "Name" for package
// functions — the form diagnostics and root specs use.
func FuncName(fn *types.Func) string {
	if r := receiverName(fn); r != "" {
		return r + "." + fn.Name()
	}
	return fn.Name()
}

// RootSet is a parsed set of hot-root declarations.
type RootSet struct {
	specs []rootSpec
}

// rootSpec is one declaration: package-path suffix, optional receiver
// type name ("*" matches any receiver, "" matches package functions),
// and function name ("*" matches any).
type rootSpec struct {
	pkg  string
	recv string
	name string
}

// ParseRoots parses a comma-separated root declaration list. Each entry
// is "pkg/path.Func" or "pkg/path.Recv.Method"; the package part is
// matched as a whole-segment path suffix, and the receiver and name
// parts accept "*".
func ParseRoots(s string) (*RootSet, error) {
	rs := &RootSet{}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		// The package part may contain dots only in its final segment's
		// absence; split on "." after the last "/".
		slash := strings.LastIndexByte(entry, '/')
		rest := entry[slash+1:]
		parts := strings.Split(rest, ".")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("callpath: root %q: want pkg/path.Func or pkg/path.Recv.Method", entry)
		}
		sp := rootSpec{pkg: entry[:slash+1] + parts[0]}
		if len(parts) == 2 {
			sp.name = parts[1]
		} else {
			sp.recv, sp.name = parts[1], parts[2]
		}
		if sp.name == "" || sp.pkg == "" {
			return nil, fmt.Errorf("callpath: root %q: empty package or function", entry)
		}
		rs.specs = append(rs.specs, sp)
	}
	if len(rs.specs) == 0 {
		return nil, fmt.Errorf("callpath: empty root set")
	}
	return rs, nil
}

// Match reports whether fn matches any root spec.
func (rs *RootSet) Match(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	recv := receiverName(fn)
	for _, sp := range rs.specs {
		if !pathSuffix(path, sp.pkg) {
			continue
		}
		if sp.name != "*" && sp.name != fn.Name() {
			continue
		}
		if sp.recv == "*" || sp.recv == recv {
			return true
		}
	}
	return false
}

// receiverName returns the bare (pointer-stripped) receiver type name of
// a method, or "" for package functions.
func receiverName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pathSuffix reports whether path ends in the whole-segment suffix sfx.
func pathSuffix(path, sfx string) bool {
	return path == sfx || strings.HasSuffix(path, "/"+sfx)
}

func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
