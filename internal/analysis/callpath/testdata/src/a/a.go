// Package a exercises the callpath engine: direct calls, closures,
// function and method values, interface dispatch, and cold code.
package a

// Handler is dispatched through an interface inside Serve; the engine
// over-approximates the call with every in-package implementation.
type Handler interface{ Handle() }

type Server struct{}

func (s *Server) Handle() { fromRootMethod() } // want `reachable: hot root Server.Handle`

type Impl struct{}

func (Impl) Handle() { viaIface() } // want `reachable: reachable from hot root Serve`

func Serve(h Handler) int { // want `reachable: hot root Serve`
	direct()
	go func() { inClosure() }()
	f := valueUsed
	_ = f
	h.Handle()
	return 0
}

func direct() {} // want `reachable: reachable from hot root Serve`

func inClosure() {} // want `reachable: reachable from hot root Serve`

func valueUsed() {} // want `reachable: reachable from hot root Serve`

func viaIface() {} // want `reachable: reachable from hot root Serve via Impl.Handle`

func fromRootMethod() {} // want `reachable: reachable from hot root Server.Handle`

func cold() { direct() }
