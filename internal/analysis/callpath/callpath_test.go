package callpath_test

import (
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/callpath"
)

// probe wraps the engine in a throwaway analyzer that reports every
// reachable function with its trace, so the graph semantics (closures,
// method values, interface dispatch, BFS traces) can be golden-tested
// with ordinary want comments.
func probe(rootSpecs string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "callprobe",
		Doc:  "report hot-reachable functions (callpath engine test harness)",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			roots, err := callpath.ParseRoots(rootSpecs)
			if err != nil {
				return nil, err
			}
			g := callpath.Build(pass, callpath.Options{})
			reach := g.ReachableFrom(roots.Match)
			for _, n := range g.Nodes {
				if tr, ok := reach[n.Obj]; ok {
					pass.Reportf(n.Decl.Name.Pos(), "reachable: %s", tr.Describe())
				}
			}
			return nil, nil
		},
	}
}

func TestReachability(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), probe("a.Serve,a.Server.Handle"), "a")
}

func TestParseRoots(t *testing.T) {
	for _, bad := range []string{"", "   ,  ", "justaname", "pkg.a.b.c", "pkg."} {
		if _, err := callpath.ParseRoots(bad); err == nil {
			t.Errorf("ParseRoots(%q): want error, got nil", bad)
		}
	}
	rs, err := callpath.ParseRoots("internal/core.Predictor.detectFast, internal/strdist.MinPairDistScratch")
	if err != nil {
		t.Fatalf("ParseRoots: %v", err)
	}
	if rs.Match(nil) {
		t.Error("Match(nil) = true, want false")
	}
}

func TestDefaultHotRootsParse(t *testing.T) {
	if _, err := callpath.ParseRoots(callpath.DefaultHotRoots); err != nil {
		t.Fatalf("DefaultHotRoots does not parse: %v", err)
	}
	for _, want := range []string{"detectFast", "detectAllFast", "measureUnit", "Index.LR", "MeasureColumn", "scanChunks", "colstore.*.Next"} {
		if !strings.Contains(callpath.DefaultHotRoots, want) {
			t.Errorf("DefaultHotRoots is missing %s", want)
		}
	}
}
