// Package floatcompare defines an analyzer that flags == and != between
// floating-point expressions.
//
// Uni-Detect's verdicts hinge on comparing smoothed likelihood-ratio
// scores, p-values and θ extremeness thresholds — quantities produced by
// chains of float arithmetic where exact equality is almost never the
// intended predicate: two mathematically equal LR scores computed along
// different code paths routinely differ in the last ulp, silently flipping
// a ranking or a threshold test without failing any unit test. Equality
// on floats must therefore go through an explicit epsilon helper.
//
// The analyzer permits:
//
//   - comparisons where both operands are compile-time constants (the
//     compiler folds these exactly);
//   - comparisons against an exact constant 0, the conventional sentinel
//     and division guard (0 is exactly representable, and "x == 0 before
//     dividing" is a correctness idiom, not a bug);
//   - comparisons inside designated epsilon helpers (function names
//     matching the -floatcompare.helpers regexp), which is where the one
//     legitimate raw comparison belongs;
//   - _test.go files, which legitimately assert exact deterministic
//     outputs (golden values produced by the same code path).
package floatcompare

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var (
	helpers   = `(?i)(approx|almost|within|epsilon|close|tol)`
	skipTests = true
)

// Analyzer flags floating-point == / != outside epsilon helpers.
var Analyzer = &analysis.Analyzer{
	Name:     "floatcompare",
	Doc:      "flag == and != between floating-point expressions outside epsilon helpers",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&helpers, "helpers", helpers,
		"regexp of function names allowed to compare floats directly")
	Analyzer.Flags.BoolVar(&skipTests, "skiptests", skipTests,
		"skip _test.go files")
}

func run(pass *analysis.Pass) (interface{}, error) {
	helperRx, err := regexp.Compile(helpers)
	if err != nil {
		return nil, err
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Walk with a stack so the enclosing function name is known at each
	// comparison site.
	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
		(*ast.BinaryExpr)(nil),
	}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op != token.EQL && be.Op != token.NEQ {
			return true
		}
		if skipTests && isTestFile(pass, be.Pos()) {
			return true
		}
		if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
			return true
		}
		if isConst(pass, be.X) && isConst(pass, be.Y) {
			return true // folded exactly by the compiler
		}
		if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
			return true // sentinel / division guard
		}
		if name := enclosingFuncName(stack); helperRx.MatchString(name) {
			return true // inside a designated epsilon helper
		}
		pass.Reportf(be.OpPos, "floating-point comparison with %s; use an epsilon helper (stats.ApproxEq) or bitwise identity (stats.SameFloat) instead", be.Op)
		return true
	})
	return nil, nil
}

func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isExactZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
