// Package floatcompare defines an analyzer that flags == and != between
// floating-point expressions.
//
// Uni-Detect's verdicts hinge on comparing smoothed likelihood-ratio
// scores, p-values and θ extremeness thresholds — quantities produced by
// chains of float arithmetic where exact equality is almost never the
// intended predicate: two mathematically equal LR scores computed along
// different code paths routinely differ in the last ulp, silently flipping
// a ranking or a threshold test without failing any unit test. Equality
// on floats must therefore go through an explicit epsilon helper.
//
// The analyzer permits:
//
//   - comparisons where both operands are compile-time constants (the
//     compiler folds these exactly);
//   - comparisons against an exact constant 0, the conventional sentinel
//     and division guard (0 is exactly representable, and "x == 0 before
//     dividing" is a correctness idiom, not a bug);
//   - comparisons inside designated epsilon helpers (function names
//     matching the -floatcompare.helpers regexp), which is where the one
//     legitimate raw comparison belongs;
//   - _test.go files, which legitimately assert exact deterministic
//     outputs (golden values produced by the same code path).
package floatcompare

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var (
	helpers   = `(?i)(approx|almost|within|epsilon|close|tol)`
	skipTests = true
)

// Analyzer flags floating-point == / != outside epsilon helpers.
var Analyzer = &analysis.Analyzer{
	Name:     "floatcompare",
	Doc:      "flag == and != between floating-point expressions outside epsilon helpers",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&helpers, "helpers", helpers,
		"regexp of function names allowed to compare floats directly")
	Analyzer.Flags.BoolVar(&skipTests, "skiptests", skipTests,
		"skip _test.go files")
}

func run(pass *analysis.Pass) (interface{}, error) {
	helperRx, err := regexp.Compile(helpers)
	if err != nil {
		return nil, err
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Walk with a stack so the enclosing function name is known at each
	// comparison site.
	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
		(*ast.BinaryExpr)(nil),
	}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op != token.EQL && be.Op != token.NEQ {
			return true
		}
		if skipTests && isTestFile(pass, be.Pos()) {
			return true
		}
		if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
			return true
		}
		if isConst(pass, be.X) && isConst(pass, be.Y) {
			return true // folded exactly by the compiler
		}
		if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
			return true // sentinel / division guard
		}
		if name := enclosingFuncName(stack); helperRx.MatchString(name) {
			return true // inside a designated epsilon helper
		}
		d := analysis.Diagnostic{
			Pos:     be.OpPos,
			Message: fmt.Sprintf("floating-point comparison with %s; use an epsilon helper (stats.ApproxEq) or bitwise identity (stats.SameFloat) instead", be.Op),
		}
		if fix, ok := sameFloatFix(pass, be); ok {
			d.SuggestedFixes = []analysis.SuggestedFix{fix}
		}
		pass.Report(d)
		return true
	})
	return nil, nil
}

// sameFloatFix rewrites `x == y` to `stats.SameFloat(x, y)` (negated for
// !=): bitwise identity, the semantics the raw comparison was already
// getting, made explicit. The fix is only offered when the comparison's
// file imports a stats package — inserting an import is beyond a text
// edit's pay grade, so files without one keep the diagnostic only.
func sameFloatFix(pass *analysis.Pass, be *ast.BinaryExpr) (analysis.SuggestedFix, bool) {
	qual, ok := statsQualifier(pass, be.Pos())
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	x, okx := render(pass, be.X)
	y, oky := render(pass, be.Y)
	if !okx || !oky {
		return analysis.SuggestedFix{}, false
	}
	neg := ""
	if be.Op == token.NEQ {
		neg = "!"
	}
	return analysis.SuggestedFix{
		Message: fmt.Sprintf("replace with %s%sSameFloat", neg, qual),
		TextEdits: []analysis.TextEdit{{
			Pos:     be.Pos(),
			End:     be.End(),
			NewText: []byte(fmt.Sprintf("%s%sSameFloat(%s, %s)", neg, qual, x, y)),
		}},
	}, true
}

// statsQualifier returns the local qualifier ("stats." or an alias) under
// which the file containing pos imports a stats package, if any.
func statsQualifier(pass *analysis.Pass, pos token.Pos) (string, bool) {
	for _, f := range pass.Files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != "stats" && !strings.HasSuffix(path, "/stats") {
				continue
			}
			name := "stats"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			switch name {
			case "_":
				continue
			case ".":
				return "", true
			}
			return name + ".", true
		}
	}
	return "", false
}

func render(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var buf bytes.Buffer
	if err := format.Node(&buf, pass.Fset, e); err != nil {
		return "", false
	}
	return buf.String(), true
}

func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isExactZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
