package floatcompare_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/floatcompare"
)

func TestFloatCompare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcompare.Analyzer, "a", "clean")
}

func TestFloatCompareFixes(t *testing.T) {
	// The fixture imports a sibling stats package, so every diagnostic
	// carries a SameFloat rewrite; the fixed source must re-lint clean.
	analysistest.RunWithFixes(t, analysistest.TestData(), floatcompare.Analyzer, "fixable")
}
