package floatcompare_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/floatcompare"
)

func TestFloatCompare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcompare.Analyzer, "a", "clean")
}
