// Package a exercises floatcompare's positive cases: raw equality on
// computed floating-point values.
package a

func lrEqual(x, y float64) bool {
	return x == y // want `floating-point comparison with ==`
}

func lrNotEqual(x, y float64) bool {
	return x != y // want `floating-point comparison with !=`
}

func mixedWidth(x float32, y float64) bool {
	return float64(x) == y // want `floating-point comparison with ==`
}

func againstNonZeroConst(x float64) bool {
	return x == 0.5 // want `floating-point comparison with ==`
}

func insideCondition(scores []float64, threshold float64) int {
	n := 0
	for _, s := range scores {
		if s != threshold { // want `floating-point comparison with !=`
			n++
		}
	}
	return n
}
