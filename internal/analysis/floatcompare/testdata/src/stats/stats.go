// Package stats mirrors the repo's internal/stats float helpers so the
// fixable fixture can import them under the same qualifier.
package stats

import "math"

// ApproxEq reports |a-b| <= eps.
func ApproxEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// SameFloat reports bitwise identity.
func SameFloat(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
