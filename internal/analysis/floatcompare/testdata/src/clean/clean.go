// Package clean exercises floatcompare's allowed forms: zero sentinels,
// constant folding, epsilon helpers, and non-float comparisons.
package clean

import "math"

func divisionGuard(num, denom float64) float64 {
	if denom == 0 {
		return 0
	}
	return num / denom
}

func zeroOnLeft(x float64) bool {
	return 0 == x
}

func widthGuard(lo, hi float64) bool {
	return hi-lo == 0
}

func bothConst() bool {
	return 1.5 == 3.0/2.0
}

func approxEqual(a, b, tol float64) bool {
	if a == b { // allowed: designated epsilon helper
		return true
	}
	return math.Abs(a-b) <= tol
}

func intCompare(a, b int) bool {
	return a == b
}

func bitwiseIdentity(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
