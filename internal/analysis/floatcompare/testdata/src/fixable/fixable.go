package fixable

import "stats"

func Equal(a, b float64) bool {
	return a == b // want `floating-point comparison with ==`
}

func NotEqual(a, b float64) bool {
	return a != b // want `floating-point comparison with !=`
}

func Threshold(scores []float64, cut float64) int {
	n := 0
	for _, s := range scores {
		if s == cut { // want `floating-point comparison with ==`
			n++
		}
	}
	return n
}

// Near keeps the import referenced before the fix rewrites anything.
func Near(a, b float64) bool { return stats.ApproxEq(a, b, 1e-9) }
