package ctxpropagate_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/ctxpropagate"
)

func TestCtxPropagate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxpropagate.Analyzer, "a", "clean")
}
