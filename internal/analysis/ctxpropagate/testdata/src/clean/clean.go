// Package clean exercises ctxpropagate's accepted forms: passing ctx on,
// selecting on Done, calling cancel, and the feeder/worker pool idiom.
package clean

import (
	"context"
	"sync"
)

func passesCtx(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

func selectsOnDone(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case ch <- 1:
		}
	}()
}

func callsCancel(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		defer cancel()
	}()
	<-ctx.Done()
}

// workerPool is the mapreduce shape: a ctx-aware feeder closes the work
// channel on cancellation, and workers drain it to completion.
func workerPool(ctx context.Context, inputs []int) {
	next := make(chan int)
	go func() {
		defer close(next)
		for _, i := range inputs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
			}
		}()
	}
	wg.Wait()
}

// noCtx takes no context, so its goroutines are out of scope.
func noCtx(xs []int) {
	go func() {
		for range xs {
		}
	}()
}
