// Package a exercises ctxpropagate's positive cases: goroutines launched
// inside context-accepting functions with no path to cancellation.
package a

import "context"

func fireAndForget(ctx context.Context, xs []int) {
	go func() { // want `goroutine in context-accepting function ignores ctx cancellation`
		for range xs {
		}
	}()
}

func worker(n int) {}

func namedIgnoresCtx(ctx context.Context, n int) {
	go worker(n) // want `goroutine in context-accepting function ignores ctx cancellation`
}

func insideLoop(ctx context.Context, jobs []int) {
	for _, j := range jobs {
		go func(j int) { // want `goroutine in context-accepting function ignores ctx cancellation`
			_ = j * 2
		}(j)
	}
}

func litWithCtxParam(ctx context.Context) {
	// The function literal itself accepts a context and spawns a blind
	// goroutine: the literal is checked on its own.
	f := func(ctx context.Context) {
		go func() { // want `goroutine in context-accepting function ignores ctx cancellation`
		}()
	}
	f(ctx)
}
