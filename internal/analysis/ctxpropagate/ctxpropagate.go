// Package ctxpropagate defines an analyzer that flags functions which
// accept a context.Context but start goroutines that ignore cancellation.
//
// The offline learner (internal/mapreduce), the corpus indexer and the
// serving daemon are the codebase's concurrent backbone: they fan work out
// to goroutine pools while a caller-supplied context carries deadlines and
// shutdown. A goroutine spawned inside such a function that never consults
// the context (directly or via a cancel function) keeps running after the
// caller has given up — leaking workers, holding shards open, and in the
// serving path turning one slow request into a pile-up.
//
// A go statement counts as context-aware when any of the following holds:
//
//   - the spawned call receives a context.Context argument;
//   - the spawned function literal's body mentions a context.Context or
//     context.CancelFunc value (selecting ctx.Done(), calling cancel(),
//     passing ctx on);
//   - the literal ranges over or receives from a channel that the
//     enclosing function closes in response to cancellation — this is the
//     worker-pool idiom, which the analyzer approximates by accepting
//     literals whose body receives from a channel variable declared in the
//     enclosing ctx-aware function and fed by a context-aware feeder.
//
// The last clause is deliberately conservative: a range over a locally
// declared channel is accepted only if some sibling goroutine or statement
// in the same enclosing function is itself context-aware (the feeder that
// closes the channel on ctx.Done()).
package ctxpropagate

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer flags ctx-accepting functions whose goroutines ignore cancellation.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxpropagate",
	Doc:      "flag goroutines launched in context-accepting functions that ignore cancellation",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ftype, body = fn.Type, fn.Body
		case *ast.FuncLit:
			ftype, body = fn.Type, fn.Body
		}
		if body == nil || !hasCtxParam(pass, ftype) {
			return
		}
		checkFunc(pass, body)
	})
	return nil, nil
}

// checkFunc inspects the go statements directly owned by this function
// body (not those of nested function literals, which are visited on their
// own if they accept a context).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var gos []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch g := n.(type) {
		case *ast.FuncLit:
			return false // nested literal owns its go statements
		case *ast.GoStmt:
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return
	}
	// The worker-pool idiom: accept channel-draining workers as long as
	// at least one goroutine (the feeder) in the same function is
	// directly context-aware.
	anyAware := false
	for _, g := range gos {
		if ctxAware(pass, g) {
			anyAware = true
			break
		}
	}
	for _, g := range gos {
		if ctxAware(pass, g) {
			continue
		}
		if anyAware && drainsChannel(pass, g) {
			continue
		}
		pass.Reportf(g.Pos(), "goroutine in context-accepting function ignores ctx cancellation; pass ctx or select on ctx.Done()")
	}
}

// ctxAware reports whether the spawned call receives a context argument or
// its function-literal body mentions a Context or CancelFunc value.
func ctxAware(pass *analysis.Pass, g *ast.GoStmt) bool {
	for _, arg := range g.Call.Args {
		if isCtxType(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	aware := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		t := obj.Type()
		if isCtxType(t) || isCancelFunc(t) {
			aware = true
			return false
		}
		return true
	})
	return aware
}

// drainsChannel reports whether the spawned function literal receives from
// or ranges over a channel (the worker half of a feeder/worker pool).
func drainsChannel(pass *analysis.Pass, g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	drains := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(s.X).Underlying().(*types.Chan); ok {
				drains = true
				return false
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW { // <-ch receive expression
				drains = true
				return false
			}
		}
		return true
	})
	return drains
}

func hasCtxParam(pass *analysis.Pass, ftype *ast.FuncType) bool {
	if ftype == nil || ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if isCtxType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isCtxType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

func isCancelFunc(t types.Type) bool {
	return isNamed(t, "context", "CancelFunc")
}

func isNamed(t types.Type, pkg, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}
