package hotalloc_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/hotalloc"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer exercised by the "suppressedfix" pattern.
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

// setFlags lifts the module scoping (testdata packages live outside the
// module prefix) and points the hot-root set at the fixture packages.
func setFlags(t *testing.T) {
	t.Helper()
	for flag, val := range map[string]string{
		"all":   "true",
		"roots": "a.Serve,budget.*,clean.Serve,xpkg.Probe,fixable.Render,suppressedfix.Render",
	} {
		if err := hotalloc.Analyzer.Flags.Set(flag, val); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHotalloc(t *testing.T) {
	setFlags(t)
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "a", "clean", "budget", "xpkg")
}

// TestHotallocFixes applies the Sprintf→Itoa SuggestedFix, compares the
// golden result, and proves the fixed source re-lints clean.
func TestHotallocFixes(t *testing.T) {
	setFlags(t)
	analysistest.RunWithFixes(t, analysistest.TestData(), hotalloc.Analyzer, "fixable")
}

// TestHotallocSuppressedFix proves a //lint:ignore hotalloc directive
// swallows the diagnostic AND its SuggestedFix: the suppressed call
// survives the -fix pass byte-identical (see the golden file), while the
// unsuppressed sibling is rewritten.
func TestHotallocSuppressedFix(t *testing.T) {
	setFlags(t)
	analysistest.RunWithFixes(t, analysistest.TestData(), hotalloc.Analyzer, "suppressedfix")
}
