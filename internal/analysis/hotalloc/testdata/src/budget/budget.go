// Package budget exercises the alloc-budget ratchet: covered budgets are
// silent, exceeded/unused/overshooting/malformed ones are diagnostics.
package budget

// Covered declares exactly its two sites: silent.
// alloc-budget: 2 result buffer make plus amortized append
func Covered(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Exceeded regressed past its declared budget.
// alloc-budget: 1 single result slice
func Exceeded(n int) []int { // want `alloc-budget on Exceeded exceeded: 2 allocation site\(s\), budget is 1`
	out := make([]int, 0, n)
	out = append(out, n)
	return out
}

// Unused is stale: the allocation it excused is gone.
// alloc-budget: 1 leftover from an old implementation
func Unused(a, b int) int { // want `unused alloc-budget on Unused`
	return a + b
}

// Overshoot declares more sites than remain after a fix.
// alloc-budget: 3 conservative guess
func Overshoot(n int) []int { // want `alloc-budget on Overshoot overshoots: 1 allocation site\(s\), budget is 3; tighten to 1`
	return make([]int, n)
}

// Malformed carries a count but no reason, so it does not excuse the
// site below.
// alloc-budget: 2
func Malformed(n int) []int { // want `malformed alloc-budget on Malformed`
	return make([]int, n) // want `hot-path allocation: make in Malformed, hot root Malformed`
}
