// Package suppressedfix proves the suppression layer swallows a
// diagnostic together with its SuggestedFix: the ignored Sprintf stays
// untouched while the reported one is rewritten.
package suppressedfix

import (
	"fmt"
	"strconv"
)

var _ = strconv.Itoa

func Render(n int) int {
	//lint:ignore hotalloc formatting cost accepted on this branch
	a := fmt.Sprintf("%d", n)
	b := fmt.Sprintf("%d", n+1) // want `call to fmt\.Sprintf, which allocates in Render, hot root Render`
	return len(a) + len(b)
}
