// Package xpkg is the dependent side of the cross-package fixture: the
// hot root sees xdep's allocates fact at the call site, while the
// budgeted callee passes silently.
package xpkg

import "xdep"

func Probe() int {
	a := xdep.Emit() // want `call to Emit, which allocates \(slice literal in Emit\) in Probe, hot root Probe`
	b := xdep.Absorbed()
	return len(a) + len(b)
}
