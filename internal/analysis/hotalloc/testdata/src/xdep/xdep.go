// Package xdep is the dependency side of the cross-package fixture: its
// unbudgeted allocation exports a fact; its budgeted one is absorbed.
package xdep

// Emit allocates and carries no budget: callers inherit the fact.
func Emit() []int {
	return []int{1, 2}
}

// Absorbed allocates under an explicit annotation: callers stay clean.
// alloc-budget: 1 fixed-size result
func Absorbed() []int {
	return []int{1}
}
