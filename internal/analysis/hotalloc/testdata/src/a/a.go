// Package a exercises every direct allocation construct hotalloc flags
// on the hot path, plus reachability (helper) and cold-code silence.
package a

import "fmt"

type payload struct{ n int }

func (p *payload) method() int { return p.n }

func Serve(vals []string, m map[string]int) int {
	buf := make([]byte, 0, 8) // want `hot-path allocation: make in Serve, hot root Serve`
	buf = append(buf, 'x')    // want `hot-path allocation: append growth in Serve`
	s := string(buf)          // want `string conversion \(copies\) in Serve`
	s = s + vals[0]           // want `string concatenation in Serve`
	ids := []int{1, 2}        // want `slice literal in Serve`
	lut := map[int]bool{}     // want `map literal in Serve`
	lut[0] = true
	p := &payload{n: 1} // want `heap-escaping composite literal \(&T\{\.\.\.\}\) in Serve`
	fmt.Println(s)      // want `call to fmt\.Println, which allocates in Serve`
	for k := range m {  // want `map-range iteration in Serve`
		ids[0] += k
	}
	cl := func() int { return p.n } // want `function literal \(closure\) in Serve`
	go worker()                     // want `goroutine launch \(go statement\) in Serve`
	box(ids[0])                     // want `interface boxing of argument in Serve`
	mv := p.method                  // want `method value \(closure over receiver\) in Serve`
	_ = mv
	return cl() + helper()
}

func box(v any) {}

func worker() {}

func helper() int {
	x := new(payload) // want `hot-path allocation: new in helper, reachable from hot root Serve`
	return x.n
}

// cold is unreachable from the root set: its allocations are silent
// (but still export the allocates fact for cross-package callers).
func cold() []int {
	return []int{1}
}
