// Package fixable exercises the fmt.Sprintf → strconv.Itoa suggested
// fix on a hot function.
package fixable

import (
	"fmt"
	"strconv"
)

var _ = strconv.Itoa

func Render(n int) string {
	return fmt.Sprintf("%d", n) // want `call to fmt\.Sprintf, which allocates in Render, hot root Render`
}
