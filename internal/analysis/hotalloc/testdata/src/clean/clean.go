// Package clean holds a hot root that is genuinely allocation-free, and
// cold code whose allocations must stay silent.
package clean

func Serve(vals []int) int {
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return helper(sum)
}

func helper(n int) int { return n * 2 }

func cold(n int) []int {
	return make([]int, n)
}
