// Package hotalloc defines an inter-package analyzer that proves the
// serving hot path allocation-clean — or pins every remaining
// allocation under an explicit, ratcheted budget.
//
// PR 5 took DetectAll from 681k allocs to a few hundred per batch, but
// that win was guarded only dynamically: benchgate allows 20%
// machine-relative drift and cannot name the line that regressed. This
// analyzer makes allocation discipline a compile-time contract, the same
// move the deterministic analyzer made for map-order purity.
//
// It builds the package's call graph with internal/analysis/callpath,
// marks every function reachable from the declared hot roots (-roots,
// defaulting to callpath.DefaultHotRoots: detectFast/detectAllFast/
// measureUnit, the measurement-cache probes, lrindex.Index.LR, the
// strdist scratch scans, and every detector MeasureColumn), and flags
// each heap-allocating construct in a hot function:
//
//   - make / new / append (growth);
//   - slice and map composite literals, and heap-escaping &T{...};
//   - conversions between string and []byte/[]rune, and non-constant
//     string concatenation;
//   - calls into fmt and errors (which allocate by contract);
//   - function literals, method values, and go statements (closure and
//     goroutine allocation);
//   - interface boxing of non-pointer-shaped arguments at call sites;
//   - map-range iteration (iterator state may escape);
//   - calls to functions of other analyzed packages that carry an
//     "allocates" fact — the cross-package discipline: a function with
//     unbudgeted allocation sites exports an analysis.Fact, and its
//     callers in dependent packages see the taint at the call site.
//
// Sites are syntactic constructs, deliberately conservative: an append
// into pre-grown capacity or a one-time lazy-init closure still counts,
// and is where the budget annotation earns its keep. A function may
// declare
//
//	// alloc-budget: <n> <reason>
//
// in its doc comment, asserting it contains exactly n allocation sites
// for the stated reason. The analyzer ratchets the annotation in both
// directions, mirroring the registry's unused-suppression rule: a budget
// with zero remaining sites is itself a diagnostic (stale), as are
// budgets exceeded (regression) or overshooting (tighten after a fix).
// Budgeted functions do not export the allocates fact — the budget is
// the explicit acceptance of their cost — and calls to them do not taint
// callers. Std packages outside fmt/errors (strconv, strings, ...) are
// not modeled; the dynamic TestDetectAllocBudget cross-checks the static
// story against testing.AllocsPerRun.
//
// Where the fix is mechanical — fmt.Sprintf("%d", x) on an int — the
// diagnostic carries a SuggestedFix to strconv.Itoa (one allocation for
// the digits instead of boxing plus formatter state plus result).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/unidetect/unidetect/internal/analysis/callpath"
)

var (
	rootsFlag = callpath.DefaultHotRoots
	modsFlag  = "github.com/unidetect/unidetect"
	trustFlag = "github.com/unidetect/unidetect/internal/obs,github.com/unidetect/unidetect/internal/faultinject"
	allFlag   = false
)

// Analyzer proves hot-path functions allocation-clean or budgeted.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "prove the serving hot path allocation-clean: every heap-allocating construct reachable from a hot root is eliminated or covered by a ratcheted // alloc-budget annotation",
	Run:       run,
	FactTypes: []analysis.Fact{new(allocates)},
}

func init() {
	Analyzer.Flags.StringVar(&rootsFlag, "roots", rootsFlag,
		"comma-separated hot-root specs (pkg/path.Func or pkg/path.Recv.Method, * wildcards in the receiver and name positions)")
	Analyzer.Flags.StringVar(&modsFlag, "mods", modsFlag,
		"comma-separated module prefixes whose packages are analyzed")
	Analyzer.Flags.StringVar(&trustFlag, "trust", trustFlag,
		"comma-separated packages whose calls never count as allocation sites (the observability and chaos layers are amortized or disabled in serving builds)")
	Analyzer.Flags.BoolVar(&allFlag, "all", allFlag,
		"analyze every package regardless of module prefix (testing)")
}

// allocates marks a function with unbudgeted allocation sites; Reason is
// a human-readable chain ("append growth in measureColumn").
type allocates struct{ Reason string }

func (*allocates) AFact()           {}
func (f *allocates) String() string { return "allocates: " + f.Reason }

// budgetRE matches a well-formed annotation payload after "//".
var budgetRE = regexp.MustCompile(`^\s*alloc-budget:\s*([0-9]+)\s+(\S.*)$`)

// site is one allocation construct (or cross-package tainted call).
type site struct {
	pos  token.Pos
	desc string
	fix  []analysis.SuggestedFix
}

// budget is one parsed // alloc-budget annotation.
type budget struct {
	n         int
	ok        bool // well-formed annotation present
	malformed bool
	pos       token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	roots, err := callpath.ParseRoots(rootsFlag)
	if err != nil {
		return nil, err
	}
	g := callpath.Build(pass, callpath.Options{})
	reach := g.ReachableFrom(roots.Match)

	type funcInfo struct {
		sites []site
		bud   budget
	}
	infos := map[*types.Func]*funcInfo{}
	for _, n := range g.Nodes {
		fi := &funcInfo{
			sites: collectSites(pass, n.Decl),
			bud:   parseBudget(n.Decl),
		}
		// Cross-package tainted calls are sites too: the callee's budget
		// decision (it has none) surfaces at our call site.
		for _, e := range g.Callees(n.Obj) {
			if g.Node(e.Callee) != nil || trusted(e.Callee) {
				continue
			}
			var fact allocates
			if pass.ImportObjectFact(e.Callee, &fact) {
				fi.sites = append(fi.sites, site{
					pos:  e.Pos,
					desc: clip(fmt.Sprintf("call to %s, which allocates (%s)", callpath.FuncName(e.Callee), fact.Reason)),
				})
			}
		}
		infos[n.Obj] = fi
	}

	// Export-taint fixed point: a function allocates if it has unbudgeted
	// sites or (transitively) calls an in-package function that does.
	// Budgets absorb: a budgeted function exports nothing and calls to it
	// do not taint. Taint only grows, so this terminates.
	taint := map[*types.Func]string{}
	for _, n := range g.Nodes {
		if fi := infos[n.Obj]; !fi.bud.ok && len(fi.sites) > 0 {
			taint[n.Obj] = fi.sites[0].desc + " in " + callpath.FuncName(n.Obj)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if _, done := taint[n.Obj]; done || infos[n.Obj].bud.ok {
				continue
			}
			for _, e := range g.Callees(n.Obj) {
				if reason, bad := taint[e.Callee]; bad && g.Node(e.Callee) != nil {
					taint[n.Obj] = clip(fmt.Sprintf("calls %s, which allocates (%s)", callpath.FuncName(e.Callee), reason))
					changed = true
					break
				}
			}
		}
	}
	for _, n := range g.Nodes {
		if reason, bad := taint[n.Obj]; bad {
			pass.ExportObjectFact(n.Obj, &allocates{Reason: clip(reason)})
		}
	}

	// Diagnostics. Budget hygiene is global (an annotation is a claim,
	// wherever it sits); per-site reports fire only on the hot set.
	for _, n := range g.Nodes {
		fi := infos[n.Obj]
		name := callpath.FuncName(n.Obj)
		switch {
		case fi.bud.malformed:
			pass.Reportf(n.Decl.Name.Pos(),
				"malformed alloc-budget on %s: want \"// alloc-budget: <n> <reason>\"", name)
		case fi.bud.ok:
			k := len(fi.sites)
			switch {
			case k == 0:
				pass.Reportf(n.Decl.Name.Pos(),
					"unused alloc-budget on %s: no allocation sites remain; delete the annotation", name)
			case k > fi.bud.n:
				pass.Reportf(n.Decl.Name.Pos(),
					"alloc-budget on %s exceeded: %d allocation site(s), budget is %d (first: %s)",
					name, k, fi.bud.n, fi.sites[0].desc)
			case k < fi.bud.n:
				pass.Reportf(n.Decl.Name.Pos(),
					"alloc-budget on %s overshoots: %d allocation site(s), budget is %d; tighten to %d",
					name, k, fi.bud.n, k)
			}
		}
		// A malformed annotation is not a budget: the sites still fire.
		tr, hot := reach[n.Obj]
		if !hot || fi.bud.ok {
			continue
		}
		for _, s := range fi.sites {
			pass.Report(analysis.Diagnostic{
				Pos: s.pos,
				Message: fmt.Sprintf("hot-path allocation: %s in %s, %s; eliminate it or add // alloc-budget: <n> <reason>",
					s.desc, name, tr.Describe()),
				SuggestedFixes: s.fix,
			})
		}
	}
	return nil, nil
}

// parseBudget reads fd's doc comment for an alloc-budget annotation.
func parseBudget(fd *ast.FuncDecl) budget {
	if fd.Doc == nil {
		return budget{}
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		// Only a line *starting* with the marker is an annotation; prose
		// mentioning alloc-budget mid-sentence is not.
		if !strings.HasPrefix(strings.TrimSpace(text), "alloc-budget") {
			continue
		}
		m := budgetRE.FindStringSubmatch(text)
		if m == nil {
			return budget{malformed: true, pos: c.Pos()}
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			return budget{malformed: true, pos: c.Pos()}
		}
		return budget{n: n, ok: true, pos: c.Pos()}
	}
	return budget{}
}

// collectSites walks fd's body (closures included — they run on their
// declarer's budget) and records every direct allocation construct.
func collectSites(pass *analysis.Pass, fd *ast.FuncDecl) []site {
	var sites []site
	add := func(pos token.Pos, desc string, fix ...analysis.SuggestedFix) {
		sites = append(sites, site{pos: pos, desc: desc, fix: fix})
	}

	// Pre-pass: which expressions sit in call position (so method values
	// used as call heads are calls, not closure allocations).
	callHeads := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callHeads[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	goLits := map[*ast.FuncLit]bool{} // go func(){...}() counted once, as the go statement
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				goLits[lit] = true
			}
			add(n.Pos(), "goroutine launch (go statement)")
		case *ast.FuncLit:
			if !goLits[n] {
				add(n.Pos(), "function literal (closure)")
			}
		case *ast.RangeStmt:
			if isMapType(pass, n.X) {
				add(n.Pos(), "map-range iteration")
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal")
			case *types.Map:
				add(n.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					switch pass.TypesInfo.TypeOf(lit).Underlying().(type) {
					case *types.Struct, *types.Array:
						add(n.Pos(), "heap-escaping composite literal (&T{...})")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv := pass.TypesInfo.Types[n]; tv.Value == nil && isStringType(tv.Type) {
					add(n.Pos(), "string concatenation")
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal && !callHeads[n] {
				add(n.Pos(), "method value (closure over receiver)")
			}
		case *ast.CallExpr:
			collectCallSites(pass, n, add)
		}
		return true
	})
	return sites
}

// collectCallSites records the allocation behavior of one call: builtins
// (make/new/append), string conversions, fmt/errors calls, and interface
// boxing of arguments.
func collectCallSites(pass *analysis.Pass, call *ast.CallExpr, add func(token.Pos, string, ...analysis.SuggestedFix)) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make")
			case "new":
				add(call.Pos(), "new")
			case "append":
				add(call.Pos(), "append growth")
			}
			return
		}
	}
	tv := pass.TypesInfo.Types[call.Fun]
	if tv.IsType() {
		// Conversion: flag the string↔[]byte/[]rune pairs (they copy).
		dst := tv.Type
		if len(call.Args) == 1 {
			src := pass.TypesInfo.TypeOf(call.Args[0])
			if stringSliceConv(dst, src) || stringSliceConv(src, dst) {
				add(call.Pos(), "string conversion (copies)")
			}
		}
		return
	}
	if path, name, ok := stdQualified(pass, fun); ok && (path == "fmt" || path == "errors") {
		add(call.Pos(), fmt.Sprintf("call to %s.%s, which allocates", path, name), sprintfFix(pass, call, name)...)
		return // boxing of its variadic args is part of the same sin
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) forwards the slice, no boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || at == types.Typ[types.UntypedNil] {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
			if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() != types.UnsafePointer {
				add(arg.Pos(), "interface boxing of argument")
			}
		default:
			add(arg.Pos(), "interface boxing of argument")
		}
	}
}

// sprintfFix suggests strconv.Itoa for the fmt.Sprintf("%d", x) idiom on
// an int argument, when the file already imports strconv (mirroring
// floatcompare's import gate: a text edit cannot add imports).
func sprintfFix(pass *analysis.Pass, call *ast.CallExpr, name string) []analysis.SuggestedFix {
	if name != "Sprintf" || len(call.Args) != 2 {
		return nil
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Value != `"%d"` {
		return nil
	}
	at, ok := pass.TypesInfo.TypeOf(call.Args[1]).Underlying().(*types.Basic)
	if !ok || at.Kind() != types.Int {
		return nil
	}
	q, ok := importQualifier(pass, call.Pos(), "strconv")
	if !ok {
		return nil
	}
	return []analysis.SuggestedFix{{
		Message: "replace fmt.Sprintf(\"%d\", x) with strconv.Itoa(x)",
		TextEdits: []analysis.TextEdit{{
			Pos:     call.Pos(),
			End:     call.Args[1].Pos(),
			NewText: []byte(q + ".Itoa("),
		}},
	}}
}

// importQualifier returns the local name under which the file containing
// pos imports path.
func importQualifier(pass *analysis.Pass, pos token.Pos, path string) (string, bool) {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, imp := range f.Imports {
				if strings.Trim(imp.Path.Value, `"`) != path {
					continue
				}
				if imp.Name != nil {
					return imp.Name.Name, true
				}
				return path[strings.LastIndexByte(path, '/')+1:], true
			}
		}
	}
	return "", false
}

// stdQualified resolves fun as a qualified identifier pkg.Name and
// returns the package path.
func stdQualified(pass *analysis.Pass, fun ast.Expr) (path, name string, ok bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// stringSliceConv reports a string → []byte/[]rune shape (or the
// reverse, when called with swapped arguments).
func stringSliceConv(dst, src types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	sb, ok := src.Underlying().(*types.Basic)
	if !ok || sb.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := dst.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	eb, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (eb.Kind() == types.Byte || eb.Kind() == types.Rune || eb.Kind() == types.Uint8 || eb.Kind() == types.Int32)
}

func isMapType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// trusted reports whether fn is defined in a -trust package.
func trusted(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, p := range strings.Split(trustFlag, ",") {
		if p = strings.TrimSpace(p); p != "" && pkg.Path() == p {
			return true
		}
	}
	return false
}

// clip bounds reason-chain growth through deep call chains.
func clip(s string) string {
	const max = 220
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}

func applies(pkgPath string) bool {
	if allFlag {
		return true
	}
	for _, prefix := range strings.Split(modsFlag, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix != "" && (pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")) {
			return true
		}
	}
	return false
}
