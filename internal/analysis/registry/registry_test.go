package registry

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
)

// TestAllRegistered walks internal/analysis and fails if any analyzer
// package there is missing from the registry (or vice versa).
func TestAllRegistered(t *testing.T) {
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		switch e.Name() {
		case "analysistest", "callpath", "flow", "registry", "testdata":
			continue // infrastructure (harness, reachability, dataflow engines), not analyzers
		}
		dirs = append(dirs, e.Name())
	}
	for _, dir := range dirs {
		if Lookup(dir) == nil {
			t.Errorf("analyzer package internal/analysis/%s is not in the registry", dir)
		}
	}
	if got, want := len(All()), len(dirs); got != want {
		t.Errorf("registry has %d analyzers, internal/analysis has %d analyzer packages", got, want)
	}
	// The suite is complete at fourteen: eleven syntactic/reachability
	// analyzers plus the three flow-sensitive concurrency ones
	// (atomicguard, lockorder, wgbalance). Update this alongside the
	// DESIGN.md §7 inventory when the suite grows.
	if got := len(All()); got != 14 {
		t.Errorf("registry has %d analyzers, want 14", got)
	}
}

// TestDesignInventoryMatchesRegistry parses the DESIGN.md §7 analyzer
// inventory table and fails unless it lists exactly the registered
// suite — the documented inventory cannot drift from the code.
func TestDesignInventoryMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile("../../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "| analyzer |") {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatal("DESIGN.md §7 analyzer inventory table (header `| analyzer |`) not found")
	}
	listed := map[string]bool{}
	for _, l := range lines[start+2:] { // skip header and separator rows
		l = strings.TrimSpace(l)
		if !strings.HasPrefix(l, "|") {
			break
		}
		cells := strings.Split(l, "|")
		if len(cells) < 3 {
			break
		}
		name := strings.TrimSpace(cells[1])
		if name != "" {
			listed[name] = true
		}
	}
	for _, a := range All() {
		if !listed[a.Name] {
			t.Errorf("registered analyzer %s is missing from the DESIGN.md §7 inventory table", a.Name)
		}
		delete(listed, a.Name)
	}
	for name := range listed {
		t.Errorf("DESIGN.md §7 inventory lists %s, which is not in the registry", name)
	}
}

// TestSuppression runs a toy analyzer through the instrumentation layer:
// standalone and trailing directives suppress, unrelated code still
// reports, and a stale directive is itself an error.
func TestSuppression(t *testing.T) {
	toy := &analysis.Analyzer{
		Name: "toy",
		Doc:  "flag functions named Bad*",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
						pass.Reportf(fd.Name.Pos(), "function %s is bad", fd.Name.Name)
					}
				}
			}
			return nil, nil
		},
	}
	instrument(toy, false)
	analysistest.Run(t, analysistest.TestData(), toy, "supp")
}

// TestCollectMalformed checks that a directive with no reason is flagged
// as malformed rather than silently treated as a suppression.
func TestCollectMalformed(t *testing.T) {
	const src = `package p

//lint:ignore
func A() {}

//lint:ignore toy
func B() {}

//lint:ignore toy has a reason
func C() {}

//lint:ignore-file not the directive at all
func D() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{Fset: fset, Files: []*ast.File{f}}
	supps, malformed := collect(pass, "toy")
	if len(malformed) != 2 {
		t.Errorf("got %d malformed directives, want 2 (bare and reason-less)", len(malformed))
	}
	if len(supps) != 1 {
		t.Fatalf("got %d suppressions for toy, want 1", len(supps))
	}
	if line := fset.Position(supps[0].pos).Line; line != 9 {
		t.Errorf("suppression at line %d, want 9", line)
	}
}
