// Package supp exercises the suppression layer against a toy analyzer
// that flags every function whose name starts with "Bad".
package supp

//lint:ignore toy standalone form covers the next line
func BadStandalone() {}

func BadTrailing() {} //lint:ignore toy trailing form covers its own line

func BadPlain() {} // want `function BadPlain is bad`

//lint:ignore toy nothing bad below, so this is stale // want `unused //lint:ignore toy suppression`
func Fine() {}

//lint:ignore othertool directives for other analyzers are not ours to judge
func AlsoFine() {}
