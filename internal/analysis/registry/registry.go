// Package registry is the single source of truth for unilint's analyzer
// suite. cmd/unilint, the CI gate, and the analyzer tests all consume the
// same list, so an analyzer added under internal/analysis cannot ship
// half-wired (registered in the driver but untested, or vice versa — the
// registry test walks the directory and cross-checks).
//
// The registry also owns the suppression layer shared by every analyzer:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line (trailing) or on its own line directly
// above it. A suppression swallows matching diagnostics from the named
// analyzers only; a suppression that swallows nothing is itself reported
// as an error, so stale ignores cannot rot in place after the code they
// excused is gone. Instrumentation happens in place at package init by
// wrapping each Analyzer.Run, which keeps analyzer identity (flags,
// facts, Requires edges) intact for unitchecker.
package registry

import (
	"fmt"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/unidetect/unidetect/internal/analysis/atomicguard"
	"github.com/unidetect/unidetect/internal/analysis/ctxpropagate"
	"github.com/unidetect/unidetect/internal/analysis/deterministic"
	"github.com/unidetect/unidetect/internal/analysis/floatcompare"
	"github.com/unidetect/unidetect/internal/analysis/goroleak"
	"github.com/unidetect/unidetect/internal/analysis/hotalloc"
	"github.com/unidetect/unidetect/internal/analysis/hotpanic"
	"github.com/unidetect/unidetect/internal/analysis/lockguard"
	"github.com/unidetect/unidetect/internal/analysis/lockorder"
	"github.com/unidetect/unidetect/internal/analysis/metricname"
	"github.com/unidetect/unidetect/internal/analysis/nonnegcount"
	"github.com/unidetect/unidetect/internal/analysis/seededrand"
	"github.com/unidetect/unidetect/internal/analysis/uncheckederr"
	"github.com/unidetect/unidetect/internal/analysis/wgbalance"
)

// analyzers is the full suite, kept in name order. Add new analyzers
// here; the registry test fails if a package under internal/analysis is
// missing from this list.
var analyzers = []*analysis.Analyzer{
	atomicguard.Analyzer,
	ctxpropagate.Analyzer,
	deterministic.Analyzer,
	floatcompare.Analyzer,
	goroleak.Analyzer,
	hotalloc.Analyzer,
	hotpanic.Analyzer,
	lockguard.Analyzer,
	lockorder.Analyzer,
	metricname.Analyzer,
	nonnegcount.Analyzer,
	seededrand.Analyzer,
	uncheckederr.Analyzer,
	wgbalance.Analyzer,
}

func init() {
	for i, a := range analyzers {
		// Exactly one analyzer reports malformed //lint:ignore comments;
		// otherwise every member of the suite would repeat the diagnostic.
		instrument(a, i == 0)
	}
}

// All returns the suppression-instrumented suite in registration order.
func All() []*analysis.Analyzer {
	out := make([]*analysis.Analyzer, len(analyzers))
	copy(out, analyzers)
	return out
}

// Lookup returns the registered analyzer with the given name, or nil.
func Lookup(name string) *analysis.Analyzer {
	for _, a := range analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// suppression is one parsed //lint:ignore directive scoped to an analyzer.
type suppression struct {
	pos  token.Pos
	file string
	line int
	used bool
}

// instrument wraps a.Run with the suppression filter. Diagnostics whose
// position falls on the directive's line or the line below are swallowed
// and mark the directive used; unused directives become diagnostics
// themselves, reported through the unwrapped Report so they cannot
// self-suppress.
func instrument(a *analysis.Analyzer, reportMalformed bool) {
	orig := a.Run
	name := a.Name
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		supps, malformed := collect(pass, name)
		if reportMalformed {
			for _, pos := range malformed {
				pass.Reportf(pos, "malformed //lint:ignore comment: want //lint:ignore <analyzer>[,<analyzer>...] <reason>")
			}
		}
		if len(supps) == 0 {
			return orig(pass)
		}
		origReport := pass.Report
		pass.Report = func(d analysis.Diagnostic) {
			p := pass.Fset.Position(d.Pos)
			for _, s := range supps {
				if s.file == p.Filename && (s.line == p.Line || s.line+1 == p.Line) {
					s.used = true
					return
				}
			}
			origReport(d)
		}
		res, err := orig(pass)
		pass.Report = origReport
		if err != nil {
			return res, err
		}
		for _, s := range supps {
			if !s.used {
				origReport(analysis.Diagnostic{
					Pos: s.pos,
					Message: fmt.Sprintf(
						"unused //lint:ignore %s suppression: no %s diagnostic on this or the next line", name, name),
				})
			}
		}
		return res, err
	}
}

// collect parses the pass's files for //lint:ignore directives naming the
// given analyzer, plus the positions of malformed directives.
func collect(pass *analysis.Pass, name string) (supps []*suppression, malformed []token.Pos) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue // not the directive (e.g. //lint:ignore-file)
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// Analyzer names but no reason (or nothing at all).
					malformed = append(malformed, c.Pos())
					continue
				}
				named := false
				for _, n := range strings.Split(fields[0], ",") {
					if n == name {
						named = true
						break
					}
				}
				if !named {
					continue
				}
				posn := pass.Fset.Position(c.Pos())
				supps = append(supps, &suppression{
					pos:  c.Pos(),
					file: posn.Filename,
					line: posn.Line,
				})
			}
		}
	}
	return supps, malformed
}
