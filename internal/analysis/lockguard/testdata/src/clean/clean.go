package clean

import "sync"

type Counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// NewCounter builds a fresh value before publication.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 0
	return c
}

type Stats struct {
	mu sync.RWMutex
	// guarded by mu
	avg float64
}

// Avg takes the read lock: RLock counts as holding the mutex.
func (s *Stats) Avg() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.avg
}
