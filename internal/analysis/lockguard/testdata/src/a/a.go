package a

import "sync"

type Cache struct {
	mu sync.Mutex
	// guarded by mu
	entries map[string]int
	hits    int // guarded by mu
}

// Get holds the lock: clean.
func (c *Cache) Get(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[k]
	return v, ok
}

// Peek reads a guarded field without the lock.
func (c *Cache) Peek(k string) int {
	return c.entries[k] // want `Cache\.entries is guarded by "mu" but Peek accesses it without holding the lock`
}

// bump writes a guarded field without the lock.
func (c *Cache) bump() {
	c.hits++ // want `Cache\.hits is guarded by "mu" but bump accesses it without holding the lock`
}

// sizeLocked follows the caller-holds-the-lock naming convention.
func (c *Cache) sizeLocked() int {
	return len(c.entries)
}

// NewCache touches guarded fields of a local, unpublished value: exempt.
func NewCache() *Cache {
	c := &Cache{entries: map[string]int{}}
	c.hits = 0
	return c
}

type Broken struct {
	// guarded by lock
	data int // want `field is marked guarded by "lock", but Broken has no such field`
}

func (b *Broken) Data() int { return b.data }
