package suppressed

import "sync"

type Cache struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

// Snapshot tolerates a stale read: metrics only, staleness reviewed.
func (c *Cache) Snapshot() int {
	return c.n //lint:ignore lockguard approximate read is acceptable for metrics
}

//lint:ignore lockguard stale: Set locks properly now // want `unused //lint:ignore lockguard suppression`
func (c *Cache) Set(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = v
}
