// Package lockguard defines an analyzer that enforces "guarded by"
// field-comment contracts: a struct field annotated
//
//	mu sync.Mutex
//	// guarded by mu
//	model *core.Model
//
// (or with a trailing `// guarded by mu` comment) may only be accessed
// from functions that visibly acquire that mutex.
//
// The offline learner and the serving daemon share model and cache state
// across goroutines; PR 1 caught a Column.Type race only because the race
// detector happened to schedule the conflict. Declaring the guard in the
// struct makes the invariant compiler-checked on every build instead:
// any method that touches the field without a `mu.Lock()`/`mu.RLock()`
// (or `defer`red variant) anywhere in its body is flagged.
//
// Heuristics, chosen to keep false positives near zero:
//
//   - only accesses through receivers, parameters, and package-level
//     variables are checked; locals are assumed unshared (construction
//     before publication is the idiomatic lock-free window);
//   - a function that locks the right mutex anywhere in its body is
//     trusted for all accesses in that body (no path sensitivity);
//   - methods whose name ends in "Locked" are trusted entirely (the
//     caller-holds-the-lock convention).
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzer enforces `// guarded by <mutex>` field comments.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "flag reads/writes of `guarded by <mutex>` struct fields outside functions that acquire the mutex",
	Run:  run,
}

// guardRE extracts the mutex field name from a field comment.
var guardRE = regexp.MustCompile(`(?i)\b(?:guarded|protected) by (\w+)`)

// guard records one annotated field.
type guard struct {
	structName string
	mutex      string
}

func run(pass *analysis.Pass) (interface{}, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller-holds-the-lock convention
			}
			locked := lockedMutexes(fd)
			checkAccesses(pass, fd, guards, locked)
		}
	}
	return nil, nil
}

// collectGuards maps annotated field objects to their guard contract. A
// comment naming a non-sibling mutex is itself diagnosed: a stale
// annotation is worse than none.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := map[*types.Var]guard{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					siblings[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mutex := guardComment(f)
				if mutex == "" {
					continue
				}
				if !siblings[mutex] {
					pass.Reportf(f.Pos(), "field is marked guarded by %q, but %s has no such field", mutex, ts.Name.Name)
					continue
				}
				for _, name := range f.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[obj] = guard{structName: ts.Name.Name, mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardComment returns the mutex named by the field's doc or line
// comment, or "".
func guardComment(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexes returns the names of mutex fields the function acquires
// anywhere in its body: x.mu.Lock(), x.mu.RLock(), plain mu.Lock(), and
// their deferred forms all count.
func lockedMutexes(fd *ast.FuncDecl) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.SelectorExpr:
			locked[x.Sel.Name] = true
		case *ast.Ident:
			locked[x.Name] = true
		}
		return true
	})
	return locked
}

// checkAccesses reports guarded-field selector accesses in fd whose
// mutex is not in the locked set.
func checkAccesses(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]guard, locked map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		g, guarded := guards[obj]
		if !guarded || locked[g.mutex] {
			return true
		}
		if !sharedBase(pass, fd, sel.X) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %q but %s accesses it without holding the lock",
			g.structName, sel.Sel.Name, g.mutex, fd.Name.Name)
		return true
	})
}

// sharedBase reports whether the access base can be visible to other
// goroutines: a receiver, parameter, or package-level variable (or any
// non-trivial expression). Function-local variables are exempt.
func sharedBase(pass *analysis.Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	root := base
	for {
		switch x := root.(type) {
		case *ast.ParenExpr:
			root = x.X
		case *ast.StarExpr:
			root = x.X
		case *ast.SelectorExpr:
			root = x.X
		case *ast.IndexExpr:
			root = x.X
		default:
			goto done
		}
	}
done:
	id, ok := root.(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return true
	}
	if v.Parent() == pass.Pkg.Scope() {
		return true // package-level
	}
	// Declared inside the body: a local, assumed unshared. Declared in
	// the receiver/parameter list: shared.
	return !within(v.Pos(), fd.Body.Pos(), fd.Body.End())
}

func within(p, lo, hi token.Pos) bool { return p >= lo && p < hi }
