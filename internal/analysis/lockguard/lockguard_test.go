package lockguard_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/lockguard"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer exercised by the "suppressed" pattern.
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockguard.Analyzer, "a", "clean", "suppressed")
}
