// Package hotpanic defines an inter-package analyzer that proves the
// serving hot path free of panic hazards.
//
// A daemon answering online detection queries (§2.2.3 serving) must not
// take down the process — or silently lose a worker goroutine — because
// one adversarial table hit an unchecked assumption. The chaos harness
// already exercises recovery dynamically; this analyzer makes the
// absence of the hazard static. Over the same callpath engine and hot
// root set as hotalloc, it flags in every hot-reachable function:
//
//   - explicit panic(...) calls, unless the function installs a
//     recovering defer (then the panic cannot escape it);
//   - type asserts without the comma-ok form — x.(T) panics on
//     mismatch; v, ok := x.(T) does not. Where the assert is the sole
//     right-hand side of a single-variable assignment, the diagnostic
//     carries a SuggestedFix appending ", _" (zero value on mismatch;
//     callers wanting the branch should take the ok);
//   - constant-index and len-arithmetic index expressions on slices and
//     strings with no len() comparison guarding the same expression
//     anywhere in the function (x[0] after `if len(x) == 0 { return }`
//     is fine; bare x[0] is a latent panic on empty input);
//   - calls to functions of other analyzed packages carrying a
//     "panics" fact (exported, transitively, for functions whose
//     unrecovered explicit panics could escape to callers).
//
// The guard heuristic is position-insensitive by design: proving
// dominance statically is out of scope, and a function that mentions
// len(x) in a comparison has at least thought about emptiness. Asserts
// and index hazards do not export facts — they are diagnosed where the
// hot set reaches them, which for this repository's root set covers
// every serving package directly.
package hotpanic

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/unidetect/unidetect/internal/analysis/callpath"
)

var (
	rootsFlag = callpath.DefaultHotRoots
	modsFlag  = "github.com/unidetect/unidetect"
	trustFlag = "github.com/unidetect/unidetect/internal/obs,github.com/unidetect/unidetect/internal/faultinject"
	allFlag   = false
)

// Analyzer proves hot-path functions free of panic hazards.
var Analyzer = &analysis.Analyzer{
	Name:      "hotpanic",
	Doc:       "prove the serving hot path panic-free: no unrecovered panics, single-form type asserts, or unguarded constant indexing reachable from a hot root",
	Run:       run,
	FactTypes: []analysis.Fact{new(panics)},
}

func init() {
	Analyzer.Flags.StringVar(&rootsFlag, "roots", rootsFlag,
		"comma-separated hot-root specs (pkg/path.Func or pkg/path.Recv.Method, * wildcards in the receiver and name positions)")
	Analyzer.Flags.StringVar(&modsFlag, "mods", modsFlag,
		"comma-separated module prefixes whose packages are analyzed")
	Analyzer.Flags.StringVar(&trustFlag, "trust", trustFlag,
		"comma-separated packages whose calls are not checked for panic facts")
	Analyzer.Flags.BoolVar(&allFlag, "all", allFlag,
		"analyze every package regardless of module prefix (testing)")
}

// panics marks a function whose explicit panic can escape to callers.
type panics struct{ Reason string }

func (*panics) AFact()           {}
func (f *panics) String() string { return "panics: " + f.Reason }

// finding is one panic hazard inside a function body.
type finding struct {
	pos  token.Pos
	desc string
	fix  []analysis.SuggestedFix
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	roots, err := callpath.ParseRoots(rootsFlag)
	if err != nil {
		return nil, err
	}
	g := callpath.Build(pass, callpath.Options{})
	reach := g.ReachableFrom(roots.Match)

	type funcInfo struct {
		findings  []finding
		recovered bool // a recovering defer absorbs escaping panics
		hasPanic  bool // an explicit panic occurs in the body
	}
	infos := map[*types.Func]*funcInfo{}
	for _, n := range g.Nodes {
		fi := &funcInfo{recovered: hasRecoverDefer(n.Decl)}
		fi.findings, fi.hasPanic = collectFindings(pass, n.Decl, fi.recovered)
		for _, e := range g.Callees(n.Obj) {
			if g.Node(e.Callee) != nil || trusted(e.Callee) {
				continue
			}
			var fact panics
			if pass.ImportObjectFact(e.Callee, &fact) && !fi.recovered {
				fi.findings = append(fi.findings, finding{
					pos:  e.Pos,
					desc: clip(fmt.Sprintf("call to %s, which may panic (%s)", callpath.FuncName(e.Callee), fact.Reason)),
				})
			}
		}
		infos[n.Obj] = fi
	}

	// Fact fixed point over escaping explicit panics: a recovering defer
	// absorbs both the function's own panics and those of its callees.
	taint := map[*types.Func]string{}
	for _, n := range g.Nodes {
		if fi := infos[n.Obj]; fi.hasPanic && !fi.recovered {
			taint[n.Obj] = "explicit panic in " + callpath.FuncName(n.Obj)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if _, done := taint[n.Obj]; done || infos[n.Obj].recovered {
				continue
			}
			for _, e := range g.Callees(n.Obj) {
				if reason, bad := taint[e.Callee]; bad && g.Node(e.Callee) != nil {
					taint[n.Obj] = clip(fmt.Sprintf("calls %s, which may panic (%s)", callpath.FuncName(e.Callee), reason))
					changed = true
					break
				}
			}
		}
	}
	for _, n := range g.Nodes {
		if reason, bad := taint[n.Obj]; bad {
			pass.ExportObjectFact(n.Obj, &panics{Reason: clip(reason)})
		}
	}

	for _, n := range g.Nodes {
		tr, hot := reach[n.Obj]
		if !hot {
			continue
		}
		name := callpath.FuncName(n.Obj)
		for _, f := range infos[n.Obj].findings {
			pass.Report(analysis.Diagnostic{
				Pos:            f.pos,
				Message:        fmt.Sprintf("hot-path panic risk: %s in %s, %s", f.desc, name, tr.Describe()),
				SuggestedFixes: f.fix,
			})
		}
	}
	return nil, nil
}

// collectFindings walks fd's body for the three direct hazard classes.
func collectFindings(pass *analysis.Pass, fd *ast.FuncDecl, recovered bool) (out []finding, hasPanic bool) {
	// Pass 1: comma-ok claims, single-assign fix targets, and len guards.
	okAsserts := map[*ast.TypeAssertExpr]bool{}
	assertFix := map[*ast.TypeAssertExpr][]analysis.SuggestedFix{}
	guardedLen := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			ta, ok := ast.Unparen(n.Rhs[0]).(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil {
				return true
			}
			switch len(n.Lhs) {
			case 2:
				okAsserts[ta] = true
			case 1:
				assertFix[ta] = []analysis.SuggestedFix{{
					Message: "use the comma-ok form (zero value on mismatch)",
					TextEdits: []analysis.TextEdit{{
						Pos:     n.Lhs[0].End(),
						End:     n.Lhs[0].End(),
						NewText: []byte(", _"),
					}},
				}}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) == 2 {
				if ta, ok := ast.Unparen(n.Values[0]).(*ast.TypeAssertExpr); ok {
					okAsserts[ta] = true
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				for _, side := range []ast.Expr{n.X, n.Y} {
					if t, ok := lenArg(pass, side); ok {
						guardedLen[t] = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: the hazards themselves.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					hasPanic = true
					if !recovered {
						out = append(out, finding{pos: n.Pos(), desc: "explicit panic"})
					}
				}
			}
		case *ast.TypeAssertExpr:
			if n.Type != nil && !okAsserts[n] {
				out = append(out, finding{
					pos:  n.Pos(),
					desc: "type assert without comma-ok",
					fix:  assertFix[n],
				})
			}
		case *ast.IndexExpr:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil || !indexablePanics(t) {
				return true
			}
			xText := exprText(n.X)
			if guardedLen[xText] {
				return true
			}
			if isConstIndex(pass, n.Index) || isLenArith(pass, n.Index) {
				out = append(out, finding{
					pos:  n.Pos(),
					desc: fmt.Sprintf("unguarded index %s[%s] (no len(%s) comparison in the function)", xText, exprText(n.Index), xText),
				})
			}
		}
		return true
	})
	return out, hasPanic
}

// indexablePanics reports whether indexing t can panic at runtime with a
// data-dependent length: slices and strings. Arrays are compile-time
// sized and maps cannot out-of-range.
func indexablePanics(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		return false // *[N]T indexing is array indexing
	}
	return false
}

// isConstIndex reports a compile-time constant index expression (x[0]).
func isConstIndex(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isLenArith reports the len(x)-k idiom (x[len(x)-1] panics when empty).
func isLenArith(pass *analysis.Pass, e ast.Expr) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != token.SUB {
		return false
	}
	_, isLen := lenArg(pass, b.X)
	return isLen
}

// lenArg resolves e as a len(arg) builtin call and returns arg's text.
func lenArg(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
		return "", false
	}
	return exprText(call.Args[0]), true
}

// hasRecoverDefer reports whether fd installs a defer whose body calls
// recover() — the idiom that stops any panic from escaping fd.
func hasRecoverDefer(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}

// exprText renders simple expressions to a canonical string, consistent
// within one function body (the guard matching key).
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[" + exprText(e.Index) + "]"
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprText(a)
		}
		return exprText(e.Fun) + "(" + strings.Join(args, ",") + ")"
	case *ast.BasicLit:
		return e.Value
	case *ast.BinaryExpr:
		return exprText(e.X) + e.Op.String() + exprText(e.Y)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// trusted reports whether fn is defined in a -trust package.
func trusted(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, p := range strings.Split(trustFlag, ",") {
		if p = strings.TrimSpace(p); p != "" && pkg.Path() == p {
			return true
		}
	}
	return false
}

// clip bounds reason-chain growth through deep call chains.
func clip(s string) string {
	const max = 220
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}

func applies(pkgPath string) bool {
	if allFlag {
		return true
	}
	for _, prefix := range strings.Split(modsFlag, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix != "" && (pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")) {
			return true
		}
	}
	return false
}
