package hotpanic_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/hotpanic"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer (shared contract with every suite member).
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

// setFlags lifts the module scoping (testdata packages live outside the
// module prefix) and points the hot-root set at the fixture packages.
func setFlags(t *testing.T) {
	t.Helper()
	for flag, val := range map[string]string{
		"all":   "true",
		"roots": "a.Serve,clean.Serve,xpkg.Probe,fixable.Render",
	} {
		if err := hotpanic.Analyzer.Flags.Set(flag, val); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHotpanic(t *testing.T) {
	setFlags(t)
	analysistest.Run(t, analysistest.TestData(), hotpanic.Analyzer, "a", "clean", "xpkg")
}

// TestHotpanicFixes applies the comma-ok SuggestedFix, compares the
// golden result, and proves the fixed source re-lints clean.
func TestHotpanicFixes(t *testing.T) {
	setFlags(t)
	analysistest.RunWithFixes(t, analysistest.TestData(), hotpanic.Analyzer, "fixable")
}
