// Package fixable exercises the comma-ok SuggestedFix on a single-
// variable assignment assert.
package fixable

func Render(x interface{}) int {
	v := x.(int) // want `type assert without comma-ok in Render, hot root Render`
	return v
}
