// Package xpkg is the dependent side of the cross-package fixture: the
// hot root sees xdep's panics fact at the call site.
package xpkg

import "xdep"

func Probe(n int) int {
	a := xdep.MustPositive(n) // want `call to MustPositive, which may panic \(explicit panic in MustPositive\) in Probe, hot root Probe`
	b := xdep.Tolerant(n)
	return a + b
}
