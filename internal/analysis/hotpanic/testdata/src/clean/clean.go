// Package clean holds a hazard-free hot root and cold code whose panic
// must stay silent (though it still exports the panics fact).
package clean

func Serve(vals []int) int {
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return sum
}

func cold(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}
