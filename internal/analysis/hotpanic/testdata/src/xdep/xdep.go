// Package xdep is the dependency side of the cross-package fixture: the
// escaping panic exports a fact, the recovered one is absorbed.
package xdep

// MustPositive panics on bad input; callers inherit the fact.
func MustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}

// Tolerant recovers, so callers see it as safe.
func Tolerant(n int) int {
	defer func() { _ = recover() }()
	if n <= 0 {
		panic("not positive")
	}
	return n
}
