// Package a exercises the three direct hazard classes: explicit panics,
// single-form type asserts, and unguarded constant/len-arithmetic
// indexing — plus the guards that silence each one.
package a

func Serve(vals []string, x interface{}) string {
	if len(vals) == 0 {
		return ""
	}
	first := vals[0] // guarded: the len(vals) comparison above
	s := x.(string)  // want `type assert without comma-ok in Serve, hot root Serve`
	if s == "" {
		panic("empty input") // want `explicit panic in Serve, hot root Serve`
	}
	guard()
	return first + s + head(vals) + tail(vals) + okAssert(x)
}

func head(vals []string) string {
	return vals[0] // want `unguarded index vals\[0\] \(no len\(vals\) comparison in the function\) in head, reachable from hot root Serve`
}

func tail(vals []string) string {
	return vals[len(vals)-1] // want `unguarded index vals\[len\(vals\)-1\]`
}

// guard recovers, so its panic cannot escape: silent.
func guard() {
	defer func() { _ = recover() }()
	panic("contained")
}

// okAssert uses the comma-ok form: silent.
func okAssert(x interface{}) string {
	v, ok := x.(string)
	if !ok {
		return ""
	}
	return v
}
