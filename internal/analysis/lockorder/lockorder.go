// Package lockorder defines an analyzer that derives a module-global
// lock-acquisition graph and reports every cycle in it as a potential
// deadlock, with the full witness chain ("A held at x.go:12 → acquires
// B via f→g").
//
// lockguard proves each guarded field is accessed under its mutex;
// lockorder proves the mutexes themselves are acquired in one global
// order. The two compose: a tree can be perfectly guarded and still
// deadlock the moment two goroutines take the same pair of locks in
// opposite orders — exactly the regime ROADMAP item 1 (multi-worker
// merge plus live hot-swap) creates.
//
// Held-lock sets are computed flow-sensitively on the
// internal/analysis/flow CFG: Lock/RLock acquire, Unlock/RUnlock
// release, and a deferred unlock keeps the lock held to function exit
// because the CFG replays deferred calls in the exit block. The join is
// intersection (a lock is "held" at a point only if held on every path
// into it), which biases the analysis toward silence on unbalanced
// branches. Locks are identified at class level — pkgpath.Struct.field
// for mutex fields, pkgpath.var for package-level mutexes — so two
// instances of the same struct contribute to one order; locks held
// through local variables with no class (a locally-declared mutex)
// still participate in self-deadlock detection via their spelled
// expression but never create graph edges.
//
// Calls propagate acquisitions: an intra-package fixpoint over the
// callpath graph (static edges only — a closure or interface
// over-approximation would fabricate orderings) computes which lock
// classes each function may acquire and through which chain, and the
// result rides .vetx as lockAcquires object facts, so holding A while
// calling a dependency that locks B creates the A→B edge with the
// "via f→g" chain intact. Methods following the *Locked suffix
// convention start with the guarding mutex of every `// guarded by`
// field they touch already held.
//
// Each package unions its own edges with every dependency's lockGraph
// package fact, re-exports the merge, and reports a cycle if one of its
// own edges closes it — so the diagnostic appears exactly once, in the
// package that completes the cycle, at the acquisition site that
// closes it.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/unidetect/unidetect/internal/analysis/callpath"
	"github.com/unidetect/unidetect/internal/analysis/flow"
)

var (
	modsFlag = "github.com/unidetect/unidetect"
	allFlag  = false
)

// Analyzer reports lock-order cycles as potential deadlocks.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "derive the module-global lock-acquisition graph (flow-sensitive held sets, call propagation via facts) and report any cycle as a potential deadlock with its witness chain",
	Run:       run,
	FactTypes: []analysis.Fact{new(lockAcquires), new(lockGraph)},
}

func init() {
	Analyzer.Flags.StringVar(&modsFlag, "mods", modsFlag,
		"comma-separated module prefixes whose packages are analyzed")
	Analyzer.Flags.BoolVar(&allFlag, "all", allFlag,
		"analyze every package regardless of module prefix (testing)")
}

// LockAcq is one lock class a function may acquire, with the call chain
// that reaches the acquisition ("Outer→lockNu").
type LockAcq struct {
	Class string
	Chain string
}

// lockAcquires is the object fact carrying a function's may-acquire set.
type lockAcquires struct{ Acqs []LockAcq }

func (*lockAcquires) AFact() {}
func (f *lockAcquires) String() string {
	var cs []string
	for _, a := range f.Acqs {
		cs = append(cs, a.Class)
	}
	return "acquires: " + strings.Join(cs, ",")
}

// LockEdge is one acquisition-order edge in the module-global graph.
type LockEdge struct {
	From, To string
	// At is the position of the acquisition (or call) that created the
	// edge, as "file.go:12" — positions do not survive package boundaries.
	At string
	// Desc is the human witness: "a.mu held at a.go:11 → acquires a.nu".
	Desc string
}

// lockGraph is the package fact accumulating the module-global graph:
// each package exports the union of its own edges and its dependencies'.
type lockGraph struct{ Edges []LockEdge }

func (*lockGraph) AFact()           {}
func (f *lockGraph) String() string { return fmt.Sprintf("lockGraph: %d edges", len(f.Edges)) }

// heldLock is one lock in the flow state.
type heldLock struct {
	class string // "" for unclassed locals
	at    string // acquisition position, for witness chains
	rlock bool
}

// lockState maps a lock's spelled expression ("c.mu") to how it is held.
type lockState map[string]heldLock

// ownEdge is a LockEdge created in this package, with a reportable
// position.
type ownEdge struct {
	LockEdge
	pos token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	a := &analyzer{
		pass:     pass,
		acquires: map[*types.Func]map[string]string{},
		imported: map[*types.Func]map[string]string{},
		guards:   collectGuards(pass),
	}
	g := callpath.Build(pass, callpath.Options{})
	a.solveAcquires(g)

	for _, n := range g.Nodes {
		entry := a.entryHeld(n.Decl)
		a.checkUnit(n.Decl.Body, entry)
		// Function literals are separate units: their lock operations are
		// excluded from the enclosing sequential flow (a goroutine body
		// interleaves on its own schedule) but still ordered internally.
		for _, lit := range n.Lits {
			a.checkUnit(lit.Body, lockState{})
		}
	}

	// Merge the module-global graph: own edges plus every dependency's,
	// deduplicated, re-exported for our dependents.
	seen := map[string]bool{}
	var merged []LockEdge
	add := func(e LockEdge) {
		k := e.From + "|" + e.To + "|" + e.At + "|" + e.Desc
		if !seen[k] {
			seen[k] = true
			merged = append(merged, e)
		}
	}
	for _, e := range a.own {
		add(e.LockEdge)
	}
	for _, pf := range pass.AllPackageFacts() {
		if g, ok := pf.Fact.(*lockGraph); ok {
			for _, e := range g.Edges {
				add(e)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.At < b.At
	})
	pass.ExportPackageFact(&lockGraph{Edges: merged})

	a.reportCycles(merged)
	return nil, nil
}

type analyzer struct {
	pass *analysis.Pass
	// acquires is the intra-package may-acquire fixpoint: function →
	// lock class → shortest witness chain.
	acquires map[*types.Func]map[string]string
	// imported caches cross-package lockAcquires fact lookups.
	imported map[*types.Func]map[string]string
	guards   map[*types.Var]guard
	own      []ownEdge
}

// solveAcquires computes each function's may-acquire set: direct
// Lock/RLock calls (function literals excluded — their schedule is not
// the caller's) plus, transitively, every static callee's set.
func (a *analyzer) solveAcquires(g *callpath.Graph) {
	for _, n := range g.Nodes {
		direct := map[string]string{}
		name := callpath.FuncName(n.Obj)
		for _, ev := range lockEvents(a.pass, n.Decl.Body) {
			if ev.kind == evAcquire && !ev.try && ev.class != "" {
				if _, ok := direct[ev.class]; !ok {
					direct[ev.class] = name
				}
			}
		}
		a.acquires[n.Obj] = direct
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			mine := a.acquires[n.Obj]
			name := callpath.FuncName(n.Obj)
			for _, e := range g.Callees(n.Obj) {
				if e.Kind != callpath.EdgeStatic {
					continue
				}
				for class, chain := range a.calleeAcquires(g, e.Callee) {
					if _, ok := mine[class]; !ok {
						mine[class] = name + "→" + chain
						changed = true
					}
				}
			}
		}
	}
	for _, n := range g.Nodes {
		set := a.acquires[n.Obj]
		if len(set) == 0 {
			continue
		}
		fact := &lockAcquires{}
		for class, chain := range set {
			fact.Acqs = append(fact.Acqs, LockAcq{Class: class, Chain: chain})
		}
		sort.Slice(fact.Acqs, func(i, j int) bool { return fact.Acqs[i].Class < fact.Acqs[j].Class })
		a.pass.ExportObjectFact(n.Obj, fact)
	}
}

// calleeAcquires resolves a callee's may-acquire set: the in-package
// fixpoint if it is ours, the imported fact otherwise.
func (a *analyzer) calleeAcquires(g *callpath.Graph, fn *types.Func) map[string]string {
	if g != nil && g.Node(fn) != nil {
		return a.acquires[fn]
	}
	if set, ok := a.imported[fn]; ok {
		return set
	}
	set := map[string]string{}
	var fact lockAcquires
	if a.pass.ImportObjectFact(fn, &fact) {
		for _, acq := range fact.Acqs {
			set[acq.Class] = acq.Chain
		}
	}
	a.imported[fn] = set
	return set
}

// checkUnit runs the held-set dataflow over one function body and
// records edges and self-deadlocks at each program point.
func (a *analyzer) checkUnit(body *ast.BlockStmt, entry lockState) {
	lat := lockLattice{pass: a.pass, entry: entry}
	g := flow.New(body)
	st := flow.Solve[lockState](g, lat)
	st.Walk(g, lat, func(_ *flow.Block, n ast.Node, atExit bool, before lockState) {
		s := before
		for _, ev := range nodeEvents(a.pass, n, atExit) {
			a.observe(s, ev)
			s = apply(s, ev)
		}
	})
}

// observe records diagnostics and graph edges for one event against the
// current held set.
func (a *analyzer) observe(s lockState, ev lockEvent) {
	switch ev.kind {
	case evAcquire:
		if h, dup := s[ev.key]; dup {
			// Try variants never block, and a second RLock under an RLock
			// is legal; everything else re-acquiring the same lock is a
			// guaranteed self-deadlock.
			if !ev.try && !(ev.rlock && h.rlock) {
				a.pass.Reportf(ev.pos,
					"%s is locked again while already held (acquired at %s): guaranteed self-deadlock",
					ev.key, h.at)
			}
			return
		}
		if ev.try || ev.class == "" {
			return // non-blocking or unclassed: no ordering constraint
		}
		for _, h := range s {
			if h.class == "" || h.class == ev.class {
				continue
			}
			a.addEdge(h, ev.class, ev.pos, "")
		}
	case evCall:
		for class, chain := range a.callAcqs(ev) {
			for _, h := range s {
				if h.class == "" || h.class == class {
					continue
				}
				a.addEdge(h, class, ev.pos, chain)
			}
		}
	}
}

// callAcqs resolves the acquire set of a call event's callee.
func (a *analyzer) callAcqs(ev lockEvent) map[string]string {
	if set, ok := a.acquires[ev.fn]; ok {
		return set
	}
	return a.calleeAcquires(nil, ev.fn)
}

func (a *analyzer) addEdge(h heldLock, to string, pos token.Pos, chain string) {
	desc := fmt.Sprintf("%s held at %s → acquires %s", h.class, h.at, to)
	if chain != "" {
		desc += " via " + chain
	}
	a.own = append(a.own, ownEdge{
		LockEdge: LockEdge{From: h.class, To: to, At: a.posn(pos), Desc: desc},
		pos:      pos,
	})
}

// reportCycles reports each distinct cycle once, at the earliest own
// edge that closes it.
func (a *analyzer) reportCycles(merged []LockEdge) {
	adj := map[string][]LockEdge{}
	for _, e := range merged {
		adj[e.From] = append(adj[e.From], e)
	}
	sort.Slice(a.own, func(i, j int) bool { return a.own[i].pos < a.own[j].pos })
	reported := map[string]bool{}
	for _, e := range a.own {
		path := findPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		set := map[string]bool{e.From: true, e.To: true}
		var descs []string
		for _, pe := range path {
			set[pe.To] = true
			descs = append(descs, pe.Desc)
		}
		classes := make([]string, 0, len(set))
		for c := range set {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		sig := strings.Join(classes, "|")
		if reported[sig] {
			continue
		}
		reported[sig] = true
		a.pass.Reportf(e.pos, "potential deadlock: lock-order cycle: %s; %s",
			e.Desc, strings.Join(descs, "; "))
	}
}

// findPath returns the edges of a shortest path from class `from` to
// class `to` in deterministic order, or nil.
func findPath(adj map[string][]LockEdge, from, to string) []LockEdge {
	type visit struct {
		class string
		via   *visit
		edge  LockEdge
	}
	queue := []*visit{{class: from}}
	seen := map[string]bool{from: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v.class == to {
			var path []LockEdge
			for w := v; w.via != nil; w = w.via {
				path = append([]LockEdge{w.edge}, path...)
			}
			return path
		}
		for _, e := range adj[v.class] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, &visit{class: e.To, via: v, edge: e})
			}
		}
	}
	return nil
}

// --- event extraction -----------------------------------------------------

type eventKind int

const (
	evAcquire eventKind = iota
	evRelease
	evCall
)

// lockEvent is one lock operation or propagating call.
type lockEvent struct {
	kind  eventKind
	key   string // spelled lock expression, e.g. "c.mu"
	class string
	pos   token.Pos
	at    string // rendered position, carried into held state
	rlock bool
	try   bool
	fn    *types.Func // evCall callee
}

// nodeEvents extracts the events of one CFG block node. Deferred
// statements produce no events at registration; their calls replay in
// the exit block (atExit), which is what keeps a deferred Unlock "held"
// through the whole body.
func nodeEvents(pass *analysis.Pass, n ast.Node, atExit bool) []lockEvent {
	if _, ok := n.(*ast.DeferStmt); ok && !atExit {
		return nil
	}
	return lockEvents(pass, n)
}

// lockEvents walks a subtree (function literals and nested defers
// excluded) for lock operations and statically-resolved calls, in
// pre-order.
func lockEvents(pass *analysis.Pass, n ast.Node) []lockEvent {
	var out []lockEvent
	for _, t := range flow.Targets(n) {
		ast.Inspect(t, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if ev, ok := lockCallEvent(pass, m); ok {
					out = append(out, ev)
					return true
				}
				if fn := staticCallee(pass, m); fn != nil {
					out = append(out, lockEvent{kind: evCall, pos: m.Pos(), fn: fn})
				}
			}
			return true
		})
	}
	return out
}

// lockCallEvent classifies call as a sync.Mutex/RWMutex operation.
func lockCallEvent(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	p := pass.Fset.Position(call.Pos())
	ev := lockEvent{
		key:   types.ExprString(sel.X),
		class: classOf(pass, sel.X),
		pos:   call.Pos(),
		at:    fmt.Sprintf("%s:%d", base(p.Filename), p.Line),
	}
	switch fn.Name() {
	case "Lock":
		ev.kind = evAcquire
	case "RLock":
		ev.kind, ev.rlock = evAcquire, true
	case "TryLock":
		ev.kind, ev.try = evAcquire, true
	case "TryRLock":
		ev.kind, ev.rlock, ev.try = evAcquire, true, true
	case "Unlock", "RUnlock":
		ev.kind = evRelease
	default:
		return lockEvent{}, false
	}
	return ev, true
}

// staticCallee resolves call to a declared function or method, or nil.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// classOf renders the module-global identity of a lock expression:
// pkgpath.Struct.field for a mutex field, pkgpath.var for a
// package-level mutex, "" for locals (no global order to violate).
func classOf(pass *analysis.Pass, x ast.Expr) string {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var)
		if !ok {
			return ""
		}
		if v.IsField() {
			base := pass.TypesInfo.TypeOf(x.X)
			if base == nil {
				return ""
			}
			if p, ok := base.(*types.Pointer); ok {
				base = p.Elem()
			}
			named, ok := base.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return ""
			}
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
		}
		return packageVarClass(v)
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		return packageVarClass(v)
	}
	return ""
}

func packageVarClass(v *types.Var) string {
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

// --- held-set dataflow ----------------------------------------------------

// lockLattice is the must-held analysis: join is intersection, so a
// lock is held at a point only if it is held on every path into it.
type lockLattice struct {
	pass  *analysis.Pass
	entry lockState
}

func (l lockLattice) Entry() lockState {
	out := lockState{}
	for k, v := range l.entry {
		out[k] = v
	}
	return out
}

func (lockLattice) Join(a, b lockState) lockState {
	out := lockState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb.at < va.at {
				va = vb // deterministic witness on diverging paths
			}
			out[k] = va
		}
	}
	return out
}

func (lockLattice) Equal(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

func (l lockLattice) Transfer(n ast.Node, atExit bool, s lockState) lockState {
	evs := nodeEvents(l.pass, n, atExit)
	for _, ev := range evs {
		s = apply(s, ev)
	}
	return s
}

// apply folds one event into the held set.
func apply(s lockState, ev lockEvent) lockState {
	switch ev.kind {
	case evAcquire:
		if _, dup := s[ev.key]; dup {
			return s
		}
		out := lockState{}
		for k, v := range s {
			out[k] = v
		}
		out[ev.key] = heldLock{class: ev.class, at: ev.at, rlock: ev.rlock}
		return out
	case evRelease:
		if _, held := s[ev.key]; !held {
			return s
		}
		out := lockState{}
		for k, v := range s {
			if k != ev.key {
				out[k] = v
			}
		}
		return out
	}
	return s
}

// --- entry state for *Locked methods --------------------------------------

// guardRE and guard mirror lockguard's annotation intake: the same
// `// guarded by mu` contract names the mutex a *Locked method assumes.
var guardRE = regexp.MustCompile(`(?i)\b(?:guarded|protected) by (\w+)`)

type guard struct {
	structName string
	mutex      string
	mutexVar   *types.Var
}

// collectGuards maps annotated field objects to their guard contract.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := map[*types.Var]guard{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := map[string]*types.Var{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						siblings[name.Name] = v
					}
				}
			}
			for _, f := range st.Fields.List {
				mutex := guardComment(f)
				if mutex == "" || siblings[mutex] == nil {
					continue // lockguard reports the stale annotation
				}
				for _, name := range f.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[obj] = guard{structName: ts.Name.Name, mutex: mutex, mutexVar: siblings[mutex]}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardComment(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// entryHeld derives the held set a *Locked method may assume: for every
// `guarded by mu` field it touches through its receiver, the caller
// holds mu.
func (a *analyzer) entryHeld(fd *ast.FuncDecl) lockState {
	held := lockState{}
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil || len(a.guards) == 0 {
		return held
	}
	recv := ""
	if names := fd.Recv.List[0].Names; len(names) > 0 {
		recv = names[0].Name
	}
	if recv == "" {
		return held
	}
	at := a.posn(fd.Name.Pos()) + " (held on entry)"
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := a.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		g, guarded := a.guards[v]
		if !guarded {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || id.Name != recv {
			return true
		}
		class := ""
		if g.mutexVar.Pkg() != nil {
			class = g.mutexVar.Pkg().Path() + "." + g.structName + "." + g.mutex
		}
		held[recv+"."+g.mutex] = heldLock{class: class, at: at}
		return true
	})
	return held
}

// --- misc -----------------------------------------------------------------

func (a *analyzer) posn(pos token.Pos) string {
	p := a.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", base(p.Filename), p.Line)
}

func base(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}

func applies(pkgPath string) bool {
	if allFlag {
		return true
	}
	for _, prefix := range strings.Split(modsFlag, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix != "" && (pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")) {
			return true
		}
	}
	return false
}
