// Package suppressed proves //lint:ignore swallows a lockorder cycle
// report while the analyzer stays live for other diagnostics.
package suppressed

import "sync"

var a, b sync.Mutex

func AB() {
	a.Lock()
	defer a.Unlock()
	//lint:ignore lockorder the b-then-a path runs only during init, before workers start
	b.Lock()
	b.Unlock()
}

func BA() {
	b.Lock()
	defer b.Unlock()
	a.Lock()
	a.Unlock()
}

func double() {
	a.Lock()
	a.Lock() // want `a is locked again while already held \(acquired at suppressed\.go:25\): guaranteed self-deadlock`
	a.Unlock()
	a.Unlock()
}
