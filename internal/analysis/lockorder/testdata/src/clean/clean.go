// Package clean exercises lockorder negatives: a consistent global
// order, entry-held *Locked methods, try-locks, read-locks, goroutine
// bodies on their own schedule, and unclassed local mutexes.
package clean

import "sync"

var mu, nu sync.Mutex

func AB() {
	mu.Lock()
	defer mu.Unlock()
	nu.Lock()
	nu.Unlock()
}

func ABAgain() { // same direction as AB: an edge, not a cycle
	mu.Lock()
	nu.Lock()
	nu.Unlock()
	mu.Unlock()
}

type pair struct {
	mu sync.Mutex
	// items is guarded by mu.
	items []int
	aux   sync.Mutex
}

// addLocked runs with p.mu held by the caller (derived from the
// guarded-by annotation on items); acquiring p.aux under it matches the
// order add establishes directly.
func (p *pair) addLocked(v int) {
	p.items = append(p.items, v)
	p.aux.Lock()
	p.aux.Unlock()
}

func (p *pair) add(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aux.Lock()
	p.aux.Unlock()
	p.addLocked(v)
}

var rw sync.RWMutex

func readTwice() { // RLock under RLock is not a self-deadlock
	rw.RLock()
	defer rw.RUnlock()
	rw.RLock()
	rw.RUnlock()
}

func opportunistic() bool { // TryLock never blocks: no ordering edge
	nu.Lock()
	defer nu.Unlock()
	if mu.TryLock() {
		mu.Unlock()
		return true
	}
	return false
}

func spawn() { // the goroutine body interleaves on its own schedule
	mu.Lock()
	defer mu.Unlock()
	go func() {
		nu.Lock()
		nu.Unlock()
	}()
}

func local() { // a local mutex has no module-global identity
	var m sync.Mutex
	m.Lock()
	nu.Lock()
	nu.Unlock()
	m.Unlock()
}
