// Package xldep establishes the lock order A → B and exports helpers
// that acquire A for the caller; its lockGraph and lockAcquires facts
// let a dependent package close the cycle.
package xldep

import "sync"

var A, B sync.Mutex

// AthenB establishes the xldep-internal order A → B.
func AthenB() {
	A.Lock()
	defer A.Unlock()
	B.Lock()
	B.Unlock()
}

// LockA acquires A on the caller's behalf.
func LockA() {
	A.Lock()
}

// UnlockA releases A.
func UnlockA() {
	A.Unlock()
}
