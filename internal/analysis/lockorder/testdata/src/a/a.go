// Package a exercises lockorder true positives: a package-level lock
// cycle, a struct-field cycle closed through a helper call, and a
// guaranteed self-deadlock.
package a

import "sync"

var mu, nu sync.Mutex

func AB() {
	mu.Lock()
	defer mu.Unlock()
	nu.Lock() // want `potential deadlock: lock-order cycle: a\.mu held at a\.go:11 → acquires a\.nu; a\.nu held at a\.go:18 → acquires a\.mu`
	nu.Unlock()
}

func BA() { // the same cycle is reported once, at its first edge in AB
	nu.Lock()
	defer nu.Unlock()
	mu.Lock()
	mu.Unlock()
}

type S struct {
	mu sync.Mutex
	nu sync.Mutex
}

func (s *S) lockNu() {
	s.nu.Lock()
	s.nu.Unlock()
}

func (s *S) Outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockNu() // want `potential deadlock: lock-order cycle: a\.S\.mu held at a\.go:35 → acquires a\.S\.nu via S\.lockNu; a\.S\.nu held at a\.go:41 → acquires a\.S\.mu`
}

func (s *S) Rev() { // closes the S.mu/S.nu cycle; reported at Outer
	s.nu.Lock()
	defer s.nu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

func Double() {
	mu.Lock()
	mu.Lock() // want `mu is locked again while already held \(acquired at a\.go:48\): guaranteed self-deadlock`
	mu.Unlock()
	mu.Unlock()
}
