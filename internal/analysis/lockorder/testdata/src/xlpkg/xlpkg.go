// Package xlpkg closes a cross-package lock cycle: it holds xldep.B
// while calling a helper whose exported fact says it acquires xldep.A,
// reversing the A → B order xldep's own lockGraph fact carries.
package xlpkg

import "xldep"

func Rev() {
	xldep.B.Lock()
	defer xldep.B.Unlock()
	xldep.LockA() // want `potential deadlock: lock-order cycle: xldep\.B held at xlpkg\.go:9 → acquires xldep\.A via LockA; xldep\.A held at xldep\.go:12 → acquires xldep\.B`
	xldep.UnlockA()
}
