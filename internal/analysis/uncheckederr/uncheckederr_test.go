package uncheckederr_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/uncheckederr"
)

func TestUncheckedErr(t *testing.T) {
	// Same-package calls always count as in-module, so the fixtures need
	// no modpath override.
	analysistest.Run(t, analysistest.TestData(), uncheckederr.Analyzer, "a", "clean")
}
