// Package uncheckederr defines an analyzer that flags discarded error
// returns from this module's own functions.
//
// go vet only checks a fixed list of standard-library calls; Uni-Detect's
// hot paths (corpus decoding, model training, the serving daemon) return
// errors that encode data corruption — a gob decode failure or a ragged
// table silently dropped on the floor becomes a wrong likelihood ratio,
// not a crash. Calls into any package of this module whose result list
// includes an error must consume it; an explicit `_ =` assignment remains
// available as a visible, greppable opt-out.
//
// The module path is configurable (-uncheckederr.modpath); calls to the
// package under analysis itself always count as in-module, which also
// makes the rule self-contained for test fixtures.
package uncheckederr

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

var modpath = "github.com/unidetect/unidetect"

// Analyzer flags expression statements that discard in-module errors.
var Analyzer = &analysis.Analyzer{
	Name:     "uncheckederr",
	Doc:      "flag discarded error returns from this module's own functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&modpath, "modpath", modpath,
		"module path prefix whose functions must have errors checked")
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.ExprStmt)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		call, ok := n.(*ast.ExprStmt).X.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil || !inModule(pass, fn) {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		res := sig.Results()
		for i := 0; i < res.Len(); i++ {
			if isErrorType(res.At(i).Type()) {
				pass.Reportf(call.Pos(), "error returned by %s is discarded; handle it or assign to _ explicitly", fn.Name())
				return
			}
		}
	})
	return nil, nil
}

func inModule(pass *analysis.Pass, fn types.Object) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false // builtin
	}
	if pkg == pass.Pkg {
		return true
	}
	path := pkg.Path()
	return path == modpath || strings.HasPrefix(path, modpath+"/")
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
