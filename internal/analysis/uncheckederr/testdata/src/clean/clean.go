// Package clean exercises uncheckederr's accepted forms: handled errors,
// explicit blank assignment, error-free calls, and out-of-module callees.
package clean

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error {
	return errors.New("boom")
}

func pure() int { return 1 }

func caller() error {
	if err := mayFail(); err != nil {
		return fmt.Errorf("caller: %w", err)
	}
	_ = mayFail() // explicit, greppable opt-out
	pure()        // no error in the result list

	// Out-of-module calls are go vet's jurisdiction, not ours.
	fmt.Println(strings.ToUpper("ok"))
	return nil
}
