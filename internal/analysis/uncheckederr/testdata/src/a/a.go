// Package a exercises uncheckederr's positive cases: expression statements
// discarding an error returned by an in-module function or method.
package a

import "errors"

func mayFail() error {
	return errors.New("boom")
}

func loadCount() (int, error) {
	return 0, errors.New("corrupt")
}

type store struct{}

func (store) Flush() error { return nil }

func caller() {
	mayFail()   // want `error returned by mayFail is discarded`
	loadCount() // want `error returned by loadCount is discarded`

	var s store
	s.Flush() // want `error returned by Flush is discarded`
}
