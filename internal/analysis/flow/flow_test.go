package flow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// buildCFG parses a function body and returns its graph.
func buildCFG(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// render prints the reachable subgraph as "desc#i -> succ,succ" lines,
// in block index order, successors in edge order. Dead blocks (created
// after a jump, never reached) are elided, mirroring what Solve visits.
func render(g *Graph) string {
	reach := map[*Block]bool{}
	for _, b := range g.Reachable() {
		reach[b] = true
	}
	name := func(b *Block) string { return fmt.Sprintf("%s#%d", b.Desc, b.Index) }
	var lines []string
	for _, b := range g.Blocks {
		if !reach[b] || b == g.Exit {
			// The exit block never has successors; edge lists elide it.
			continue
		}
		var succs []string
		for _, s := range b.Succs {
			if reach[s] {
				succs = append(succs, name(s))
			}
		}
		lines = append(lines, name(b)+" -> "+strings.Join(succs, ","))
	}
	return strings.Join(lines, "\n")
}

// TestCFGShapes pins the block/edge structure the builder produces for
// each control construct, independent of any analyzer.
func TestCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straightline",
			body: "x := 1; _ = x",
			want: "entry#0 -> exit#1",
		},
		{
			name: "if",
			body: "if c() {\n a()\n}\nb()",
			want: `entry#0 -> if.then#2,if.done#1
if.done#1 -> exit#3
if.then#2 -> if.done#1`,
		},
		{
			name: "ifelse",
			body: "if c() {\n a()\n} else {\n b()\n}",
			want: `entry#0 -> if.then#2,if.else#3
if.done#1 -> exit#4
if.then#2 -> if.done#1
if.else#3 -> if.done#1`,
		},
		{
			name: "for",
			body: "for i := 0; i < 3; i++ {\n a()\n}\nb()",
			want: `entry#0 -> for.cond#1
for.cond#1 -> for.body#3,for.done#2
for.done#2 -> exit#5
for.body#3 -> for.post#4
for.post#4 -> for.cond#1`,
		},
		{
			name: "forever-with-break",
			body: "for {\n if c() {\n  break\n }\n}\nb()",
			want: `entry#0 -> for.cond#1
for.cond#1 -> for.body#3
for.done#2 -> exit#7
for.body#3 -> if.then#5,if.done#4
if.done#4 -> for.cond#1
if.then#5 -> for.done#2`,
		},
		{
			name: "range",
			body: "for _, v := range xs {\n use(v)\n}\ndone()",
			want: `entry#0 -> range.loop#1
range.loop#1 -> range.body#3,range.done#2
range.done#2 -> exit#4
range.body#3 -> range.loop#1`,
		},
		{
			name: "range-continue",
			body: "for _, v := range xs {\n if skip(v) {\n  continue\n }\n use(v)\n}",
			want: `entry#0 -> range.loop#1
range.loop#1 -> range.body#3,range.done#2
range.done#2 -> exit#7
range.body#3 -> if.then#5,if.done#4
if.done#4 -> range.loop#1
if.then#5 -> range.loop#1`,
		},
		{
			name: "switch",
			body: "switch tag() {\ncase 1:\n a()\ncase 2:\n b()\n}\ndone()",
			want: `entry#0 -> switch.case#2,switch.case#3,switch.done#1
switch.done#1 -> exit#4
switch.case#2 -> switch.done#1
switch.case#3 -> switch.done#1`,
		},
		{
			name: "switch-default-fallthrough",
			body: "switch {\ncase c():\n a()\n fallthrough\ndefault:\n b()\n}",
			want: `entry#0 -> switch.case#2,switch.case#3
switch.done#1 -> exit#5
switch.case#2 -> switch.case#3
switch.case#3 -> switch.done#1`,
		},
		{
			name: "typeswitch",
			body: "switch v.(type) {\ncase int:\n a()\ndefault:\n b()\n}",
			want: `entry#0 -> switch.case#2,switch.case#3
switch.done#1 -> exit#4
switch.case#2 -> switch.done#1
switch.case#3 -> switch.done#1`,
		},
		{
			name: "select",
			body: "select {\ncase <-ch:\n a()\ncase ch2 <- 1:\n b()\n}",
			want: `entry#0 -> select.comm#2,select.comm#3
switch.done#1 -> exit#4
select.comm#2 -> switch.done#1
select.comm#3 -> switch.done#1`,
		},
		{
			name: "return-midway",
			body: "if c() {\n return\n}\nb()",
			want: `entry#0 -> if.then#2,if.done#1
if.done#1 -> exit#4
if.then#2 -> exit#4`,
		},
		{
			name: "panic-terminates",
			body: "if c() {\n panic(\"x\")\n}\nb()",
			want: `entry#0 -> if.then#2,if.done#1
if.done#1 -> exit#4
if.then#2 -> exit#4`,
		},
		{
			name: "goto-backward",
			body: "retry:\n if c() {\n  goto retry\n }",
			want: `entry#0 -> label.retry#1
label.retry#1 -> if.then#3,if.done#2
if.done#2 -> exit#5
if.then#3 -> label.retry#1`,
		},
		{
			name: "goto-forward",
			body: "if c() {\n goto out\n}\na()\nout:\nb()",
			want: `entry#0 -> if.then#2,if.done#1
if.done#1 -> label.out#4
if.then#2 -> label.out#4
label.out#4 -> exit#5`,
		},
		{
			name: "labeled-break",
			body: "outer:\nfor {\n for {\n  break outer\n }\n}\ndone()",
			want: `entry#0 -> label.outer#1
label.outer#1 -> for.cond#2
for.cond#2 -> for.body#4
for.done#3 -> exit#9
for.body#4 -> for.cond#5
for.cond#5 -> for.body#7
for.body#7 -> for.done#3`,
		},
		{
			name: "labeled-continue",
			body: "outer:\nfor i := 0; i < 2; i++ {\n for {\n  continue outer\n }\n}",
			want: `entry#0 -> label.outer#1
label.outer#1 -> for.cond#2
for.cond#2 -> for.body#4,for.done#3
for.done#3 -> exit#10
for.body#4 -> for.cond#6
for.post#5 -> for.cond#2
for.cond#6 -> for.body#8
for.body#8 -> for.post#5`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := buildCFG(t, tt.body)
			got := render(g)
			want := normalize(tt.want)
			if got != want {
				t.Errorf("CFG mismatch\n-- got --\n%s\n-- want --\n%s", got, want)
			}
		})
	}
}

func normalize(s string) string {
	var lines []string
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	return strings.Join(lines, "\n")
}

// TestCFGDefers pins the defer model: registration stays in its block,
// and the calls replay in the exit block in reverse order.
func TestCFGDefers(t *testing.T) {
	g := buildCFG(t, "defer a()\ndefer b()\nc()")
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	var calls []string
	for _, n := range g.Exit.Nodes {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			t.Fatalf("exit node %T, want *ast.CallExpr", n)
		}
		calls = append(calls, call.Fun.(*ast.Ident).Name)
	}
	if got := strings.Join(calls, ","); got != "b,a" {
		t.Errorf("exit replays defers as %s, want b,a (reverse registration order)", got)
	}
}

// assignLattice tracks the set of identifiers assigned so far — a toy
// may-analysis exercising Solve's join and Walk's program points.
type assignLattice struct{}

type assignState map[string]bool

func (assignLattice) Entry() assignState { return assignState{} }

func (assignLattice) Join(a, b assignState) assignState {
	out := assignState{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (assignLattice) Equal(a, b assignState) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (assignLattice) Transfer(n ast.Node, atExit bool, s assignState) assignState {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return s
	}
	out := assignState{}
	for k := range s {
		out[k] = true
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	return out
}

func keys(s assignState) string {
	var ks []string
	for k := range s {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

// TestSolveJoin proves the fixpoint joins branch states: after an
// if/else assigning different variables, both are "may-assigned", and
// the loop back edge folds the body's assignment into the loop head.
func TestSolveJoin(t *testing.T) {
	g := buildCFG(t, `
x := 1
if c() {
	y := 2
	_ = y
} else {
	z := 3
	_ = z
}
done := true
_ = done
for c() {
	w := 4
	_ = w
}
`)
	st := Solve[assignState](g, assignLattice{})

	// State before each node, keyed by the node's rendering position.
	var atDone, atExit assignState
	st.Walk(g, assignLattice{}, func(b *Block, n ast.Node, exit bool, before assignState) {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "done" {
				atDone = before
			}
		}
		if b == g.Exit {
			atExit = before
		}
	})
	if got := keys(atDone); got != "x,y,z" {
		t.Errorf("state before `done := true` = {%s}, want {x,y,z} (join of both branches)", got)
	}
	exitIn := st.In[g.Exit]
	if got := keys(exitIn); got != "done,w,x,y,z" {
		t.Errorf("exit in-state = {%s}, want {done,w,x,y,z} (loop body folded in)", got)
	}
	_ = atExit
}

// TestSolveSkipsUnreachable proves blocks after an unconditional
// return never reach the solver or Walk.
func TestSolveSkipsUnreachable(t *testing.T) {
	g := buildCFG(t, "return\nx := 1\n_ = x")
	st := Solve[assignState](g, assignLattice{})
	st.Walk(g, assignLattice{}, func(b *Block, n ast.Node, exit bool, before assignState) {
		if as, ok := n.(*ast.AssignStmt); ok {
			t.Errorf("walked unreachable assignment %v", as.Lhs)
		}
	})
	if got := keys(st.In[g.Exit]); got != "" {
		t.Errorf("exit in-state = {%s}, want empty", got)
	}
}
