package flow

import "go/ast"

// Lattice describes one forward dataflow problem over states of type S.
// States are treated as immutable values: Transfer and Join must return
// fresh (or unaliased) states rather than mutating their arguments, and
// the lattice must have finite height — joining two different states
// must converge (the usual move is an "unknown" top element) or Solve
// will not terminate.
type Lattice[S any] interface {
	// Entry is the state on function entry.
	Entry() S
	// Join merges the states of two predecessors at a block boundary.
	Join(a, b S) S
	// Equal reports whether two states are indistinguishable; the
	// fixpoint stops refining a block when its input state is Equal to
	// the previous round's.
	Equal(a, b S) bool
	// Transfer applies one evaluation point to the state. atExit is
	// true when n is a deferred *ast.CallExpr replayed in the exit
	// block (execution), as opposed to its *ast.DeferStmt registration
	// point.
	Transfer(n ast.Node, atExit bool, s S) S
}

// States is the solver's result: the input state of every reachable
// block.
type States[S any] struct {
	// In maps each reachable block to the join of its predecessors'
	// output states (Entry() for the entry block). Unreachable blocks
	// are absent.
	In map[*Block]S
}

// Solve runs the forward fixpoint over g's reachable blocks.
func Solve[S any](g *Graph, lat Lattice[S]) *States[S] {
	in := map[*Block]S{g.Entry: lat.Entry()}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := transferBlock(g, lat, blk, in[blk])
		for _, succ := range blk.Succs {
			next := out
			if prev, ok := in[succ]; ok {
				next = lat.Join(prev, out)
				if lat.Equal(prev, next) {
					continue
				}
			}
			in[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return &States[S]{In: in}
}

// Walk replays the transfer function through every reachable block in
// index order, calling visit with the state immediately *before* each
// node — the per-node program points clients report diagnostics from.
// atExit mirrors Lattice.Transfer's flag.
func (st *States[S]) Walk(g *Graph, lat Lattice[S], visit func(b *Block, n ast.Node, atExit bool, before S)) {
	for _, blk := range g.Blocks {
		s, ok := st.In[blk]
		if !ok {
			continue // unreachable
		}
		exit := blk == g.Exit
		for _, n := range blk.Nodes {
			visit(blk, n, exit && isDeferredCall(n), s)
			s = lat.Transfer(n, exit && isDeferredCall(n), s)
		}
	}
}

// transferBlock folds the block's nodes through the transfer function.
func transferBlock[S any](g *Graph, lat Lattice[S], blk *Block, s S) S {
	exit := blk == g.Exit
	for _, n := range blk.Nodes {
		s = lat.Transfer(n, exit && isDeferredCall(n), s)
	}
	return s
}

// isDeferredCall reports whether an exit-block node is a replayed
// deferred call (a bare *ast.CallExpr; every other node kind a block
// carries is a statement or control expression).
func isDeferredCall(n ast.Node) bool {
	_, ok := n.(*ast.CallExpr)
	return ok
}
