// Package flow is the shared intraprocedural control-flow-graph and
// forward-dataflow engine behind the flow-sensitive analyzers
// (atomicguard, lockorder, wgbalance) — the flow-sensitive sibling of
// internal/analysis/callpath, which answers *whether* a function is
// reached while this package answers *in what order its statements
// execute*.
//
// ROADMAP item 1 turns the mostly-sequential pipeline into cooperating
// goroutines hot-swapping a shared index; the invariants that regime
// depends on (atomics paired with their publication order, locks
// acquired in one global order, WaitGroups balanced before Wait) are
// inherently *path* properties: "the field is unpublished here",
// "mu is still held there". A syntactic walk cannot see them; a CFG
// with a join-until-fixpoint solver can.
//
// The engine gives an analyzer three reusable pieces:
//
//   - New: basic blocks over a function body's typed AST, with
//     branch/loop/switch/select/goto/labeled-break handling. Blocks
//     carry ast.Nodes rather than only statements: branch conditions,
//     range operands and switch tags appear in the block that evaluates
//     them, so transfer functions observe every effectful expression at
//     its execution point.
//
//   - Deferred-call modeling: a *ast.DeferStmt appears in its
//     registering block (argument evaluation happens there), and the
//     deferred *ast.CallExpr additionally appears in the Exit block in
//     reverse registration order (execution happens at function exit,
//     whatever path reached it). The over-approximation — a defer
//     registered on one path "runs" on all — biases clients toward
//     silence: joining the paths loses the constant and an unknown
//     state reports nothing.
//
//   - Solve: a generic forward lattice-join fixpoint solver with
//     per-node program points (States.Walk replays the transfer through
//     each reachable block, handing the client the state immediately
//     before every node).
//
// The engine itself reports nothing; it is a library, not an analyzer,
// and is exempt from the registry completeness check.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of
// evaluation points with a single entry and a set of successors.
type Block struct {
	Index int
	// Desc names the block's role for tests and debugging: "entry",
	// "if.then", "for.cond", "range.body", "switch.case", "select.comm",
	// "label.retry", "dead", "exit", ...
	Desc string
	// Nodes are the block's evaluation points in execution order:
	// statements, plus the control expressions the block evaluates
	// (an if/for condition, a range operand, a switch tag). In the exit
	// block, bare *ast.CallExpr nodes are deferred calls executing.
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	Exit  *Block
	// Blocks holds every block in creation order (entry first, exit
	// last). Blocks unreachable from Entry — code after an
	// unconditional return, say — stay in the slice; Solve skips them.
	Blocks []*Block
	// Defers are the defer statements registered anywhere in the body,
	// in source order. Their calls re-appear in Exit.Nodes reversed.
	Defers []*ast.DeferStmt
}

// New builds the CFG of one function body (use fd.Body; the engine is
// agnostic to whether the function is a declaration or a literal).
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*labelTarget{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Desc: "exit"} // indexed last, appended after build
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edgeFrom(b.cur, b.g.Exit)
	// Resolve forward gotos.
	for _, pg := range b.gotos {
		if t, ok := b.labels[pg.label]; ok {
			b.edgeFrom(pg.from, t.block)
		}
	}
	// Deferred calls execute at exit, in reverse registration order.
	for i := len(b.g.Defers) - 1; i >= 0; i-- {
		b.g.Exit.Nodes = append(b.g.Exit.Nodes, b.g.Defers[i].Call)
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// Reachable returns the blocks reachable from Entry, in index order.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block
	// loops is the stack of enclosing breakable/continuable constructs.
	loops []loopCtx
	// labels maps a label name to its target block (for goto) and, once
	// the labeled construct is entered, its break/continue blocks.
	labels map[string]*labelTarget
	gotos  []pendingGoto
	// pendingLabel is the label naming the *next* loop/switch/select
	// statement, consumed by that construct to register labeled
	// break/continue targets.
	pendingLabel string
}

type loopCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select (not continuable)
}

type labelTarget struct {
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(desc string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Desc: desc}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edgeFrom(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to target and leaves the
// builder in a fresh (initially unreachable) block for any trailing
// statements.
func (b *builder) jump(target *Block) {
	b.edgeFrom(b.cur, target)
	b.cur = b.newBlock("dead")
}

// startBlock begins desc as a successor of the current block.
func (b *builder) startBlock(desc string) *Block {
	blk := b.newBlock(desc)
	b.edgeFrom(b.cur, blk)
	b.cur = blk
	return blk
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a breakable construct.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findLoop resolves a break/continue target: the innermost matching
// construct, or the labeled one.
func (b *builder) findLoop(label string, needContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if needContinue && lc.continueTo == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is a goto target and may name the following
		// loop/switch/select for labeled break/continue.
		target := b.startBlock("label." + s.Label.Name)
		b.labels[s.Label.Name] = &labelTarget{block: target}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock("if.done")
		thenBlk := b.newBlock("if.then")
		b.edgeFrom(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.edgeFrom(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock("if.else")
			b.edgeFrom(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edgeFrom(b.cur, join)
		} else {
			b.edgeFrom(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock("for.cond")
		if s.Cond != nil {
			b.add(s.Cond)
		}
		join := b.newBlock("for.done")
		body := b.newBlock("for.body")
		b.edgeFrom(head, body)
		if s.Cond != nil {
			b.edgeFrom(head, join)
		}
		var post *Block
		continueTo := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edgeFrom(post, head)
			continueTo = post
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join, continueTo: continueTo})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeFrom(b.cur, continueTo)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		// The range operand is evaluated once, before the loop.
		b.add(s.X)
		head := b.startBlock("range.loop")
		// The RangeStmt node itself marks the per-iteration point: the
		// key/value assignment (and, for channels, the receive).
		head.Nodes = append(head.Nodes, s)
		join := b.newBlock("range.done")
		body := b.newBlock("range.body")
		b.edgeFrom(head, body)
		b.edgeFrom(head, join)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeFrom(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, false)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.switchBody(label, s.Body, true)

	case *ast.BranchStmt:
		labelName := ""
		if s.Label != nil {
			labelName = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if lc := b.findLoop(labelName, false); lc != nil {
				b.jump(lc.breakTo)
			}
		case token.CONTINUE:
			if lc := b.findLoop(labelName, true); lc != nil {
				b.jump(lc.continueTo)
			}
		case token.GOTO:
			if t, ok := b.labels[labelName]; ok {
				b.jump(t.block)
			} else {
				from := b.cur
				b.gotos = append(b.gotos, pendingGoto{from: from, label: labelName})
				b.cur = b.newBlock("dead")
			}
		case token.FALLTHROUGH:
			// Handled structurally by switchBody (the clause's last
			// statement); nothing to do here.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		// Argument evaluation happens here; the call itself re-appears
		// in the exit block.
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
		}

	default:
		// Assign, IncDec, Go, Send, Decl, Empty: straight-line.
		b.add(s)
	}
}

// switchBody builds the clauses of a switch/type-switch (fallthrough
// allowed) or select (isSelect). The current block is the head; every
// clause is its successor.
func (b *builder) switchBody(label string, body *ast.BlockStmt, isSelect bool) {
	head := b.cur
	join := b.newBlock("switch.done")
	desc := "switch.case"
	if isSelect {
		desc = "select.comm"
	}
	// First pass: create one block per clause so fallthrough can target
	// the next clause's block.
	var clauses []*Block
	for range body.List {
		clauses = append(clauses, b.newBlock(desc))
	}
	hasDefault := false
	b.loops = append(b.loops, loopCtx{label: label, breakTo: join})
	for i, cs := range body.List {
		blk := clauses[i]
		b.edgeFrom(head, blk)
		b.cur = blk
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			// The clause node carries the guard expressions; clients
			// can inspect cs.List at this point.
			b.add(cs)
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				b.add(cs.Comm)
			}
			stmts = cs.Body
		}
		fell := false
		for j, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == len(stmts)-1 && i+1 < len(clauses) {
				b.edgeFrom(b.cur, clauses[i+1])
				b.cur = b.newBlock("dead")
				fell = true
				break
			}
			b.stmt(st)
		}
		if !fell {
			b.edgeFrom(b.cur, join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	// A switch without a default can skip every clause; a select
	// without a default blocks until some clause runs.
	if !hasDefault && !isSelect {
		b.edgeFrom(head, join)
	}
	if len(body.List) == 0 {
		// `select {}` blocks forever; `switch {}` falls through.
		if isSelect {
			// No edge: join is unreachable through the select.
		} else {
			b.edgeFrom(head, join)
		}
	}
	b.cur = join
}

// Targets narrows a block node to the subtrees the block actually
// evaluates, for clients walking node subtrees. The builder stores a
// whole *ast.RangeStmt in the loop-head block (its operand and body
// live in other blocks) and whole *ast.CaseClause nodes (their body
// statements are re-added individually), so walking those naively would
// visit the same expressions twice.
func Targets(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.RangeStmt:
		var out []ast.Node
		if n.Key != nil {
			out = append(out, n.Key)
		}
		if n.Value != nil {
			out = append(out, n.Value)
		}
		return out
	case *ast.CaseClause:
		var out []ast.Node
		for _, e := range n.List {
			out = append(out, e)
		}
		return out
	}
	return []ast.Node{n}
}

// isPanicCall reports whether e is a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
