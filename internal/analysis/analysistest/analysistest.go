// Package analysistest is a self-contained replacement for
// golang.org/x/tools/go/analysis/analysistest, sufficient for unilint's
// analyzers. The upstream package is not vendored with the Go toolchain,
// and this repository builds offline, so we provide the same contract on
// top of go/parser + go/types directly:
//
//   - test packages live under testdata/src/<pkg>/ as plain .go files;
//   - expected diagnostics are declared inline with "// want `regexp`"
//     comments on the offending line (backquoted or double-quoted Go
//     string literals, several per comment allowed);
//   - Run loads the package, executes the analyzer (and its Requires
//     closure), and fails the test on any missed or surplus diagnostic.
//
// Standard-library imports inside testdata packages are type-checked with
// the source importer, so tests need no compiled export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each pattern (a package directory name under dir/src) and
// checks the analyzer's diagnostics against the package's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	for _, pat := range patterns {
		pkgDir := filepath.Join(dir, "src", pat)
		t.Run(pat, func(t *testing.T) {
			t.Helper()
			runOne(t, pkgDir, a)
		})
	}
}

// expectation is one "// want" pattern at a file:line.
type expectation struct {
	posn string // "file.go:17"
	rx   *regexp.Regexp
	raw  string
	met  bool
}

func runOne(t *testing.T, pkgDir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", pkgDir)
	}

	pkgName := files[0].Name.Name
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Logf("type error (tolerated): %v", err) },
	}
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		// Analyzers must still behave on packages with minor type
		// errors; only fail on a nil package.
		if pkg == nil {
			t.Fatalf("type-checking %s: %v", pkgDir, err)
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := runRequires(pass, a); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants, err := collectWants(fset, files)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
		matched := false
		for _, w := range wants {
			if w.posn == key && !w.met && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: no diagnostic matched want %q", w.posn, w.raw)
		}
	}
}

// runRequires runs the analyzer's dependency closure in dependency order,
// populating pass.ResultOf.
func runRequires(pass *analysis.Pass, a *analysis.Analyzer) error {
	for _, dep := range a.Requires {
		if _, done := pass.ResultOf[dep]; done {
			continue
		}
		if err := runRequires(pass, dep); err != nil {
			return err
		}
		sub := *pass
		sub.Analyzer = dep
		sub.Report = func(analysis.Diagnostic) {} // deps may not report
		res, err := dep.Run(&sub)
		if err != nil {
			return fmt.Errorf("dependency %s: %v", dep.Name, err)
		}
		pass.ResultOf[dep] = res
	}
	return nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// wantRE matches the payload of a want comment; patterns are Go string
// literals (usually backquoted) separated by spaces.
var wantRE = regexp.MustCompile(`(?s)//\s*want\s+(.*)`)

func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					lit, tail, err := scanStringLit(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want comment %q: %v", key, c.Text, err)
					}
					rx, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", key, lit, err)
					}
					wants = append(wants, &expectation{posn: key, rx: rx, raw: lit})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}
	return wants, nil
}

// scanStringLit splits one leading Go string literal off s.
func scanStringLit(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty pattern")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				unq, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", err
				}
				return unq, s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated string")
	default:
		return "", "", fmt.Errorf("pattern must be a quoted or backquoted string")
	}
}
