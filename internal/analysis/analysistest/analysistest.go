// Package analysistest is a self-contained replacement for
// golang.org/x/tools/go/analysis/analysistest, sufficient for unilint's
// analyzers. The upstream package is not vendored with the Go toolchain,
// and this repository builds offline, so we provide the same contract on
// top of go/parser + go/types directly:
//
//   - test packages live under testdata/src/<pkg>/ as plain .go files;
//   - expected diagnostics are declared inline with "// want `regexp`"
//     comments on the offending line (backquoted or double-quoted Go
//     string literals, several per comment allowed);
//   - Run loads the package, executes the analyzer (and its Requires
//     closure), and fails the test on any missed or surplus diagnostic;
//   - imports of sibling packages under testdata/src resolve locally, and
//     the analyzer runs over those dependencies first with a shared
//     in-memory fact store, so analyzers using analysis.Fact propagation
//     can be golden-tested across package boundaries;
//   - RunWithFixes additionally applies every SuggestedFix the analyzer
//     reports, compares the result against <file>.golden, and re-runs the
//     analyzer over the fixed source to prove it re-lints clean.
//
// Standard-library imports inside testdata packages are type-checked with
// the source importer, so tests need no compiled export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each pattern (a package directory name under dir/src) and
// checks the analyzer's diagnostics against the package's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	for _, pat := range patterns {
		t.Run(pat, func(t *testing.T) {
			t.Helper()
			ld := newLoader(dir, a)
			pkg, err := ld.load(pat)
			if err != nil {
				t.Fatal(err)
			}
			checkWants(t, ld.fset, pkg.files, ld.diags[pat])
		})
	}
}

// RunWithFixes runs the analyzer over one pattern package, checks want
// comments, applies every SuggestedFix, compares changed files against
// their .golden siblings, and finally re-runs the analyzer over the fixed
// sources, failing if any diagnostic survives the fixes.
func RunWithFixes(t *testing.T, dir string, a *analysis.Analyzer, pattern string) {
	t.Helper()
	ld := newLoader(dir, a)
	pkg, err := ld.load(pattern)
	if err != nil {
		t.Fatal(err)
	}
	diags := ld.diags[pattern]
	checkWants(t, ld.fset, pkg.files, diags)

	// Gather edits per file.
	type edit struct {
		start, end int
		new        string
	}
	edits := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				p0 := ld.fset.Position(te.Pos)
				p1 := ld.fset.Position(te.End)
				if p1.Offset < p0.Offset {
					t.Fatalf("suggested fix edit with End before Pos at %v", p0)
				}
				edits[p0.Filename] = append(edits[p0.Filename], edit{p0.Offset, p1.Offset, string(te.NewText)})
			}
		}
	}
	if len(edits) == 0 {
		t.Fatalf("analyzer %s reported no suggested fixes for %s", a.Name, pattern)
	}

	fixed := map[string][]byte{} // filename -> fixed content
	for name, es := range edits {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(es, func(i, j int) bool { return es[i].start < es[j].start })
		var out []byte
		last := 0
		for _, e := range es {
			if e.start < last {
				t.Fatalf("%s: overlapping suggested fixes", name)
			}
			out = append(out, src[last:e.start]...)
			out = append(out, e.new...)
			last = e.end
		}
		out = append(out, src[last:]...)
		fixed[name] = out

		golden, err := os.ReadFile(name + ".golden")
		if err != nil {
			t.Fatalf("missing golden file for fixed %s: %v", name, err)
		}
		if string(out) != string(golden) {
			t.Errorf("%s: fixed output does not match %s.golden:\n-- got --\n%s", name, name, out)
		}
	}

	// Re-lint the fixed package: parse the post-fix sources (falling back
	// to the original bytes for untouched files) and require a clean run.
	refset := token.NewFileSet()
	var refiles []*ast.File
	for _, f := range pkg.files {
		name := ld.fset.Position(f.Pos()).Filename
		src, ok := fixed[name]
		if !ok {
			var err error
			src, err = os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
		}
		pf, err := parser.ParseFile(refset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("fixed source does not parse: %v", err)
		}
		refiles = append(refiles, pf)
	}
	reld := newLoader(dir, a)
	reld.fset = refset
	repkg, err := reld.check(pattern, refiles)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range reld.diags[pattern] {
		// Want comments survive the fix; only genuine re-reports fail.
		posn := refset.Position(d.Pos)
		t.Errorf("%s:%d: diagnostic survives -fix: %s", filepath.Base(posn.Filename), posn.Line, d.Message)
	}
	_ = repkg
}

// loader loads testdata packages, resolving imports of sibling testdata
// packages locally (running the analyzer over them first, so facts flow
// across package boundaries through the shared store).
type loader struct {
	dir      string // the testdata directory
	a        *analysis.Analyzer
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*loadedPkg
	store    *factStore
	diags    map[string][]analysis.Diagnostic
	loading  map[string]bool
	typeErrs []error
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(dir string, a *analysis.Analyzer) *loader {
	fset := token.NewFileSet()
	return &loader{
		dir:     dir,
		a:       a,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*loadedPkg{},
		store:   newFactStore(),
		diags:   map[string][]analysis.Diagnostic{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer: sibling testdata packages are loaded
// (and analyzed) locally; everything else falls through to the source
// importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(ld.dir, "src", path)) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return ld.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses, type-checks and analyzes one testdata package (memoized).
func (ld *loader) load(path string) (*loadedPkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through testdata package %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	files, err := parseDir(ld.fset, filepath.Join(ld.dir, "src", path))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", filepath.Join(ld.dir, "src", path))
	}
	return ld.check(path, files)
}

// check type-checks the files as package path and runs the analyzer.
func (ld *loader) check(path string, files []*ast.File) (*loadedPkg, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { ld.typeErrs = append(ld.typeErrs, err) },
	}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil && pkg == nil {
		// Analyzers must still behave on packages with minor type errors;
		// only fail on a nil package.
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = lp

	pass := &analysis.Pass{
		Analyzer:          ld.a,
		Fset:              ld.fset,
		Files:             files,
		Pkg:               pkg,
		TypesInfo:         info,
		TypesSizes:        types.SizesFor("gc", "amd64"),
		ResultOf:          map[*analysis.Analyzer]interface{}{},
		Report:            func(d analysis.Diagnostic) { ld.diags[path] = append(ld.diags[path], d) },
		ReadFile:          os.ReadFile,
		ImportObjectFact:  ld.store.importObjectFact,
		ExportObjectFact:  ld.store.exportObjectFact,
		AllObjectFacts:    ld.store.allObjectFacts,
		ImportPackageFact: ld.store.importPackageFact,
		ExportPackageFact: func(f analysis.Fact) { ld.store.exportPackageFact(pkg, f) },
		AllPackageFacts:   ld.store.allPackageFacts,
	}
	if err := runRequires(pass, ld.a); err != nil {
		return nil, err
	}
	if _, err := ld.a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s on %s: %v", ld.a.Name, path, err)
	}
	return lp, nil
}

// factStore is the in-memory substitute for unitchecker's serialized
// .vetx fact files: facts exported while analyzing one testdata package
// are importable while analyzing its dependents.
type factStore struct {
	obj map[types.Object][]analysis.Fact
	pkg map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: map[types.Object][]analysis.Fact{},
		pkg: map[*types.Package][]analysis.Fact{},
	}
}

func (s *factStore) importObjectFact(obj types.Object, ptr analysis.Fact) bool {
	for _, f := range s.obj[obj] {
		if reflect.TypeOf(f) == reflect.TypeOf(ptr) {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

func (s *factStore) exportObjectFact(obj types.Object, f analysis.Fact) {
	cp := copyFact(f)
	for i, old := range s.obj[obj] {
		if reflect.TypeOf(old) == reflect.TypeOf(f) {
			s.obj[obj][i] = cp
			return
		}
	}
	s.obj[obj] = append(s.obj[obj], cp)
}

func (s *factStore) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, fs := range s.obj {
		for _, f := range fs {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	return out
}

func (s *factStore) importPackageFact(pkg *types.Package, ptr analysis.Fact) bool {
	for _, f := range s.pkg[pkg] {
		if reflect.TypeOf(f) == reflect.TypeOf(ptr) {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

func (s *factStore) exportPackageFact(pkg *types.Package, f analysis.Fact) {
	cp := copyFact(f)
	for i, old := range s.pkg[pkg] {
		if reflect.TypeOf(old) == reflect.TypeOf(f) {
			s.pkg[pkg][i] = cp
			return
		}
	}
	s.pkg[pkg] = append(s.pkg[pkg], cp)
}

func (s *factStore) allPackageFacts() []analysis.PackageFact {
	var out []analysis.PackageFact
	for pkg, fs := range s.pkg {
		for _, f := range fs {
			out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
		}
	}
	return out
}

// copyFact clones a fact value so later mutation by the exporting
// analyzer cannot alias the stored copy (mirrors gob round-tripping).
func copyFact(f analysis.Fact) analysis.Fact {
	v := reflect.New(reflect.TypeOf(f).Elem())
	v.Elem().Set(reflect.ValueOf(f).Elem())
	return v.Interface().(analysis.Fact)
}

// expectation is one "// want" pattern at a file:line.
type expectation struct {
	posn string // "file.go:17"
	rx   *regexp.Regexp
	raw  string
	met  bool
}

// checkWants matches diagnostics against the files' want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants, err := collectWants(fset, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
		matched := false
		for _, w := range wants {
			if w.posn == key && !w.met && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: no diagnostic matched want %q", w.posn, w.raw)
		}
	}
}

// runRequires runs the analyzer's dependency closure in dependency order,
// populating pass.ResultOf.
func runRequires(pass *analysis.Pass, a *analysis.Analyzer) error {
	for _, dep := range a.Requires {
		if _, done := pass.ResultOf[dep]; done {
			continue
		}
		if err := runRequires(pass, dep); err != nil {
			return err
		}
		sub := *pass
		sub.Analyzer = dep
		sub.Report = func(analysis.Diagnostic) {} // deps may not report
		res, err := dep.Run(&sub)
		if err != nil {
			return fmt.Errorf("dependency %s: %v", dep.Name, err)
		}
		pass.ResultOf[dep] = res
	}
	return nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// wantRE matches the payload of a want comment; patterns are Go string
// literals (usually backquoted) separated by spaces.
var wantRE = regexp.MustCompile(`(?s)//\s*want\s+(.*)`)

func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					lit, tail, err := scanStringLit(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want comment %q: %v", key, c.Text, err)
					}
					rx, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", key, lit, err)
					}
					wants = append(wants, &expectation{posn: key, rx: rx, raw: lit})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}
	return wants, nil
}

// scanStringLit splits one leading Go string literal off s.
func scanStringLit(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty pattern")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				unq, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", err
				}
				return unq, s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated string")
	default:
		return "", "", fmt.Errorf("pattern must be a quoted or backquoted string")
	}
}
