// Package metricname defines an analyzer that keeps the observability
// registry's metric inventory statically checkable.
//
// DESIGN.md §9 promises a complete metric inventory: every time series
// the binaries can emit is listed in one table, greppable by name. That
// promise holds only if (a) every name passed to an internal/obs
// constructor (Registry.Counter, Gauge, Histogram, CounterVec,
// HistogramVec) is a string literal — a name assembled at runtime is
// invisible to grep and to this analyzer — and (b) each name has exactly
// one constructor call site, so the inventory maps names to owners
// unambiguously and two subsystems cannot silently fight over one series
// with different help strings or bucket layouts (the registry panics at
// runtime on such a mismatch; this analyzer moves the failure to vet
// time). Literal names are also validated against the Prometheus metric
// name grammar, since an invalid name poisons the whole /metrics scrape.
//
// Uniqueness is enforced per package directly and across packages via a
// package fact listing each package's registrations: a duplicate is
// reported wherever both sites are visible on the import graph. Sibling
// packages with no import relation cannot be cross-checked by a modular
// analysis; the shared internal/obs convention (every subsystem registers
// its own unidetect_<subsystem>_* prefix) keeps that gap theoretical.
// Test files are exempt: tests register scratch names on private
// registries, and get-or-create re-registration is itself under test.
package metricname

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

var obspkgFlag = "github.com/unidetect/unidetect/internal/obs"

// constructors are the Registry methods whose first argument is a metric
// name that lands in the exposition.
var constructors = map[string]bool{
	"Counter":      true,
	"Gauge":        true,
	"Histogram":    true,
	"CounterVec":   true,
	"HistogramVec": true,
}

// nameRx is the Prometheus metric name grammar (text format 0.0.4).
var nameRx = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Analyzer checks obs metric registrations: literal, valid, unique names.
var Analyzer = &analysis.Analyzer{
	Name:      "metricname",
	Doc:       "require obs metric names to be valid Prometheus literals registered at exactly one call site",
	Run:       run,
	FactTypes: []analysis.Fact{new(registered)},
}

func init() {
	Analyzer.Flags.StringVar(&obspkgFlag, "obspkg", obspkgFlag,
		"import path of the metrics registry package whose constructors are checked")
}

// site is one constructor call registering a metric name.
type site struct {
	Name string // the metric name literal
	Pos  string // "file.go:17", for cross-package duplicate messages
}

// registered is the package fact carrying a package's metric
// registrations to its dependents.
type registered struct{ Sites []site }

func (*registered) AFact() {}

func (r *registered) String() string {
	names := make([]string, len(r.Sites))
	for i, s := range r.Sites {
		names[i] = s.Name
	}
	return "registers " + strings.Join(names, ",")
}

func run(pass *analysis.Pass) (interface{}, error) {
	var sites []site
	first := map[string]site{}         // name -> first local registration
	firstPos := map[string]token.Pos{} // name -> its reporting position
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isConstructor(pass, call) {
				return true
			}
			arg := call.Args[0]
			lit, ok := ast.Unparen(arg).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(arg.Pos(),
					"metric name must be a string literal (the DESIGN.md inventory and this check cannot see computed names)")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !nameRx.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"%q is not a valid Prometheus metric name (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name)
				return true
			}
			posn := pass.Fset.Position(arg.Pos())
			s := site{Name: name, Pos: fmt.Sprintf("%s:%d", posn.Filename, posn.Line)}
			if prev, dup := first[name]; dup {
				pass.Reportf(arg.Pos(),
					"metric %q is registered more than once (first at %s); each name gets exactly one constructor call site", name, prev.Pos)
			} else {
				first[name] = s
				firstPos[name] = arg.Pos()
			}
			sites = append(sites, s)
			return true
		})
	}

	// Cross-package: any dependency that registered one of our names.
	for _, pf := range pass.AllPackageFacts() {
		dep, ok := pf.Fact.(*registered)
		if !ok || pf.Package == pass.Pkg {
			continue
		}
		for _, ds := range dep.Sites {
			if pos, dup := firstPos[ds.Name]; dup {
				pass.Reportf(pos,
					"metric %q is also registered by %s (at %s); each name gets exactly one constructor call site",
					ds.Name, pf.Package.Path(), ds.Pos)
			}
		}
	}

	if len(sites) > 0 {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Name != sites[j].Name {
				return sites[i].Name < sites[j].Name
			}
			return sites[i].Pos < sites[j].Pos
		})
		pass.ExportPackageFact(&registered{Sites: sites})
	}
	return nil, nil
}

// isConstructor reports whether call resolves to one of the registry
// constructor methods of the configured obs package.
func isConstructor(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !constructors[fn.Name()] {
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != obspkgFlag {
		return false
	}
	// Methods only: a free function that happens to share a name with a
	// constructor is not a registration.
	return fn.Type().(*types.Signature).Recv() != nil
}
