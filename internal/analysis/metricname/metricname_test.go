package metricname_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/metricname"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer exercised by the "suppressed" pattern.
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

func TestMetricName(t *testing.T) {
	// The fixtures register against the fake registry package, not the
	// real internal/obs.
	if err := metricname.Analyzer.Flags.Set("obspkg", "obspkg"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := metricname.Analyzer.Flags.Set("obspkg",
			"github.com/unidetect/unidetect/internal/obs"); err != nil {
			t.Fatal(err)
		}
	}()
	// pkg2 imports pkg1, so the loader analyzes pkg1 first and the
	// cross-package duplicate arrives through the package fact.
	analysistest.Run(t, analysistest.TestData(), metricname.Analyzer,
		"a", "clean", "suppressed", "pkg2")
}
