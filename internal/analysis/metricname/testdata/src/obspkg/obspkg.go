// Package obspkg is a stand-in for internal/obs: a registry exposing the
// five metric constructors the metricname analyzer checks. The test sets
// -obspkg=obspkg so call sites in sibling fixture packages resolve here.
package obspkg

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type CounterVec struct{}

type HistogramVec struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}

func (r *Registry) CounterVec(name, help, label string) *CounterVec { return &CounterVec{} }

func (r *Registry) HistogramVec(name, help string, buckets []float64, label string) *HistogramVec {
	return &HistogramVec{}
}

// Counter is a free function sharing a constructor's name; calls to it
// are not registrations.
func Counter(name string) string { return name }
