// Package pkg1 registers a metric that package pkg2, its dependent, also
// tries to own — the cross-package duplicate the package fact carries.
package pkg1

import "obspkg"

func Register(r *obspkg.Registry) {
	r.Counter("shared_widgets_total", "owned here")
}
