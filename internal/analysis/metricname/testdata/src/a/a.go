package a

import "obspkg"

var computed = "app_" + suffix

var suffix = "requests_total"

func Register(r *obspkg.Registry) {
	r.Counter("app-requests-total", "dashes are not in the grammar") // want `"app-requests-total" is not a valid Prometheus metric name`
	r.Gauge(computed, "assembled at runtime")                        // want `metric name must be a string literal`
	r.Counter(obspkg.Counter("x"), "computed through a call")        // want `metric name must be a string literal`
	r.Histogram("app_latency_seconds", "ok", nil)
	r.HistogramVec("app_latency_seconds", "same name, different shape", nil, "path") // want `metric "app_latency_seconds" is registered more than once \(first at .*a\.go:13\)`
	r.CounterVec("app_by_code_total", "ok", "code")
}

func RegisterAgain(r *obspkg.Registry) {
	r.Counter("app_by_code_total", "second owner in the same package") // want `metric "app_by_code_total" is registered more than once`
}
