package clean

import "obspkg"

// Register owns each of its names at exactly one call site, all valid
// Prometheus literals — including a colon, which the grammar allows.
func Register(r *obspkg.Registry) {
	reqs := r.Counter("clean_requests_total", "requests")
	_ = reqs
	r.Gauge("clean_inflight", "in flight")
	r.Histogram("clean_latency_seconds", "latency", nil)
	r.CounterVec("clean_responses_total", "by class", "class")
	r.HistogramVec("clean:scrape_seconds", "recording-rule style name", nil, "job")
	// Not a registration: free function, not a Registry method.
	_ = obspkg.Counter("not_a_metric")
}
