package pkg2

import (
	"obspkg"
	"pkg1"
)

func Register(r *obspkg.Registry) {
	pkg1.Register(r)
	r.Counter("shared_widgets_total", "fighting pkg1 for the series") // want `metric "shared_widgets_total" is also registered by pkg1`
	r.Counter("pkg2_own_total", "fine")
}
