package suppressed

import "obspkg"

func Register(r *obspkg.Registry) {
	//lint:ignore metricname migration shim: old dashboards scrape the legacy dashed name
	r.Counter("legacy-name", "grandfathered")
}
