package wgbalance_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/analysis/analysistest"
	"github.com/unidetect/unidetect/internal/analysis/wgbalance"

	// The registry's init instruments the analyzer with the //lint:ignore
	// suppression layer exercised by the "suppressed" pattern.
	_ "github.com/unidetect/unidetect/internal/analysis/registry"
)

// setFlags lifts the module scoping: testdata packages live outside the
// unidetect module prefix.
func setFlags(t *testing.T) {
	t.Helper()
	if err := wgbalance.Analyzer.Flags.Set("all", "true"); err != nil {
		t.Fatal(err)
	}
}

func TestWgbalance(t *testing.T) {
	setFlags(t)
	analysistest.Run(t, analysistest.TestData(), wgbalance.Analyzer,
		"a", "clean", "suppressed", "xwpkg")
}
