// Package wgbalance defines an analyzer that checks sync.WaitGroup
// Add/Done/Wait balance flow-sensitively.
//
// The WaitGroup contract has three rules the type system cannot see:
// Add must happen-before the Wait it gates (an Add racing a returning
// Wait panics or, worse, lets Wait return early), the counter must
// never go negative, and a group must not be reused until the previous
// Wait has returned. wgbalance checks all three on the
// internal/analysis/flow CFG:
//
//   - a Done that drives a locally-declared group's known balance
//     negative is reported (Done without a matching Add);
//   - an Add after a Wait on the same group is reported (reuse races
//     with the returning Wait);
//   - an Add inside a go-spawned function literal on a captured group
//     is reported (it races with the parent's Wait — Add before the
//     goroutine starts instead).
//
// Goroutine bodies are excluded from the sequential flow — their Done
// calls land on the goroutine's schedule, not the spawner's — which is
// exactly why the canonical `wg.Add(1); go func() { defer wg.Done() }()`
// loop stays silent: the loop join makes the balance unknown, and
// unknown suppresses every delta diagnostic (the analysis is biased
// toward silence).
//
// Handing &wg to a helper transfers part of the protocol out of the
// function, so the helper must declare its contribution:
//
//	// wgdelta: 1 registers one background worker
//	func Spawn(wg *sync.WaitGroup) { ... }
//
// The declared delta is checked against the helper's own computed exit
// balance, exported as a fact, and applied at every call site —
// cross-package too, since facts ride .vetx. Passing a group to a
// helper with no annotation (and no fact) is itself the diagnostic:
// an unverifiable escape.
package wgbalance

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/unidetect/unidetect/internal/analysis/callpath"
	"github.com/unidetect/unidetect/internal/analysis/flow"
)

var (
	modsFlag = "github.com/unidetect/unidetect"
	allFlag  = false
)

// Analyzer reports WaitGroup protocol violations.
var Analyzer = &analysis.Analyzer{
	Name:      "wgbalance",
	Doc:       "check sync.WaitGroup Add/Done/Wait balance flow-sensitively; helpers receiving a group must declare their delta with a // wgdelta: annotation (exported as a fact)",
	Run:       run,
	FactTypes: []analysis.Fact{new(wgDelta)},
}

func init() {
	Analyzer.Flags.StringVar(&modsFlag, "mods", modsFlag,
		"comma-separated module prefixes whose packages are analyzed")
	Analyzer.Flags.BoolVar(&allFlag, "all", allFlag,
		"analyze every package regardless of module prefix (testing)")
}

// wgDelta is the object fact carrying a helper's declared WaitGroup
// contribution: calling it changes the caller's counter by Delta.
type wgDelta struct{ Delta int }

func (*wgDelta) AFact()           {}
func (f *wgDelta) String() string { return fmt.Sprintf("wgdelta: %d", f.Delta) }

// wgdeltaRE matches the annotation line: a signed delta plus a
// mandatory reason.
var wgdeltaRE = regexp.MustCompile(`(?m)^\s*wgdelta:\s*(-?\d+)\s+\S`)

// wgState is one group's flow state.
type wgState struct {
	delta   int
	unknown bool
	waited  bool
}

// groupStates maps a group's spelled expression ("wg", "c.wg") to its
// state. Absent keys are the zero state.
type groupStates map[string]wgState

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	a := &analyzer{
		pass:      pass,
		annotated: map[*types.Func]int{},
		imported:  map[*types.Func]*int{},
	}
	g := callpath.Build(pass, callpath.Options{})
	a.collectAnnotations(g)

	for _, n := range g.Nodes {
		a.checkGoroutineAdds(n.Decl.Body)
		a.checkUnit(n.Decl, n.Decl.Body)
		for _, lit := range n.Lits {
			a.checkUnit(nil, lit.Body)
		}
	}
	return nil, nil
}

type analyzer struct {
	pass *analysis.Pass
	// annotated maps own functions with a // wgdelta: doc line to the
	// declared delta.
	annotated map[*types.Func]int
	// imported caches cross-package wgDelta fact lookups (nil = absent).
	imported map[*types.Func]*int
}

// collectAnnotations parses // wgdelta: doc lines and exports them as
// facts so call sites in dependent packages can apply them.
func (a *analyzer) collectAnnotations(g *callpath.Graph) {
	for _, n := range g.Nodes {
		if n.Decl.Doc == nil {
			continue
		}
		m := wgdeltaRE.FindStringSubmatch(n.Decl.Doc.Text())
		if m == nil {
			continue
		}
		delta, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if wgParamKey(a.pass, n.Decl) == "" {
			a.pass.Reportf(n.Decl.Name.Pos(),
				"%s has a // wgdelta: annotation but no *sync.WaitGroup parameter",
				callpath.FuncName(n.Obj))
			continue
		}
		a.annotated[n.Obj] = delta
		a.pass.ExportObjectFact(n.Obj, &wgDelta{Delta: delta})
	}
}

// calleeDelta resolves a callee's declared delta: own annotation or
// imported fact. ok is false when the callee declares nothing.
func (a *analyzer) calleeDelta(fn *types.Func) (int, bool) {
	if d, ok := a.annotated[fn]; ok {
		return d, true
	}
	if fn.Pkg() == a.pass.Pkg {
		return 0, false // own function, no annotation
	}
	if d, ok := a.imported[fn]; ok {
		if d == nil {
			return 0, false
		}
		return *d, true
	}
	var fact wgDelta
	if a.pass.ImportObjectFact(fn, &fact) {
		d := fact.Delta
		a.imported[fn] = &d
		return d, true
	}
	a.imported[fn] = nil
	return 0, false
}

// checkUnit runs the balance dataflow over one function body. decl is
// nil for function literals (no annotation contract to verify).
func (a *analyzer) checkUnit(decl *ast.FuncDecl, body *ast.BlockStmt) {
	lat := wgLattice{a: a, locals: localWaitGroups(a.pass, body)}
	g := flow.New(body)
	st := flow.Solve[groupStates](g, lat)
	st.Walk(g, lat, func(_ *flow.Block, n ast.Node, atExit bool, before groupStates) {
		s := before
		for _, ev := range a.nodeEvents(n, atExit) {
			a.observe(lat, s, ev)
			s = lat.apply(s, ev)
		}
	})

	// An annotated function's computed exit balance on its WaitGroup
	// parameter must match what it declares — the annotation is a
	// checked contract, not a comment.
	if decl == nil {
		return
	}
	fn, _ := a.pass.TypesInfo.Defs[decl.Name].(*types.Func)
	declared, ok := a.annotated[fn]
	if !ok {
		return
	}
	key := wgParamKey(a.pass, decl)
	exit, reachable := st.In[g.Exit]
	if !reachable {
		return
	}
	for _, n := range g.Exit.Nodes {
		exit = lat.Transfer(n, true, exit)
	}
	got := exit[key]
	if !got.unknown && got.delta != declared {
		a.pass.Reportf(decl.Name.Pos(),
			"%s declares wgdelta: %d but its computed Add/Done balance on %s is %d",
			callpath.FuncName(fn), declared, key, got.delta)
	}
}

// observe reports protocol violations for one event against the
// current state.
func (a *analyzer) observe(lat wgLattice, s groupStates, ev wgEvent) {
	st := s[ev.key]
	switch ev.kind {
	case evAdd:
		if st.waited && lat.locals[ev.key] {
			a.pass.Reportf(ev.pos,
				"%s.Add after Wait on the same WaitGroup: reuse races with the returning Wait",
				ev.key)
		}
	case evDone:
		if !st.unknown && lat.locals[ev.key] && st.delta-1 < 0 {
			a.pass.Reportf(ev.pos, "%s.Done without a matching Add", ev.key)
		}
	case evEscape:
		if ev.fn == nil {
			return // untracked escape: state goes unknown, silently
		}
		if _, ok := a.calleeDelta(ev.fn); !ok {
			a.pass.Reportf(ev.pos,
				"&%s escapes to %s without a wgdelta annotation: its Add/Done balance is unverifiable",
				ev.key, callpath.FuncName(ev.fn))
		}
	}
}

// checkGoroutineAdds reports Add calls on a captured group inside
// go-spawned function literals: they race with the parent's Wait.
func (a *analyzer) checkGoroutineAdds(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, key, _, isWG := wgCall(a.pass, call)
			if !isWG || kind != evAdd {
				return true
			}
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr) // wgCall proved the shape
			if root := rootVar(a.pass, sel.X); root != nil &&
				lit.Body.Pos() <= root.Pos() && root.Pos() < lit.Body.End() {
				return true // the goroutine's own group
			}
			a.pass.Reportf(call.Pos(),
				"%s.Add inside a spawned goroutine races with Wait: call Add before starting the goroutine",
				key)
			return true
		})
		return true
	})
}

// --- events ---------------------------------------------------------------

type eventKind int

const (
	evAdd eventKind = iota
	evDone
	evWait
	evEscape
)

// wgEvent is one WaitGroup operation or escape.
type wgEvent struct {
	kind eventKind
	key  string
	// n is the Add amount; nOK is false for non-constant arguments.
	n   int
	nOK bool
	pos token.Pos
	// fn is the escape's statically-resolved callee (nil when the group
	// escapes somewhere calls cannot follow: stored, sent, closured).
	fn *types.Func
}

// nodeEvents extracts one CFG node's events. Deferred statements emit
// nothing at registration; their calls replay at exit.
func (a *analyzer) nodeEvents(n ast.Node, atExit bool) []wgEvent {
	if _, ok := n.(*ast.DeferStmt); ok && !atExit {
		return nil
	}
	var out []wgEvent
	for _, t := range flow.Targets(n) {
		ast.Inspect(t, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if kind, key, nArg, ok := wgCall(a.pass, m); ok {
					ev := wgEvent{kind: kind, key: key, pos: m.Pos()}
					if kind == evAdd {
						ev.n, ev.nOK = constInt(a.pass, nArg)
					}
					out = append(out, ev)
					return true
				}
				fn := staticCallee(a.pass, m)
				for _, arg := range m.Args {
					if key, ok := wgArgKey(a.pass, arg); ok {
						out = append(out, wgEvent{kind: evEscape, key: key, pos: arg.Pos(), fn: fn})
					}
				}
			case *ast.UnaryExpr:
				// &wg outside a call argument (handled above): the group
				// escapes somewhere flow cannot follow.
				if m.Op == token.AND && isWaitGroup(a.pass.TypesInfo.TypeOf(m.X)) {
					if !underCallArgs(t, m) {
						out = append(out, wgEvent{kind: evEscape, key: types.ExprString(m.X), pos: m.Pos()})
					}
				}
			}
			return true
		})
	}
	return out
}

// underCallArgs reports whether expr appears as (part of) an argument
// of some call within root — those escapes are classified by the
// CallExpr case instead.
func underCallArgs(root ast.Node, expr ast.Expr) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		for _, arg := range call.Args {
			if arg == expr {
				found = true
			}
		}
		return !found
	})
	return found
}

// wgCall classifies call as a sync.WaitGroup method call.
func wgCall(pass *analysis.Pass, call *ast.CallExpr) (kind eventKind, key string, nArg ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, "", nil, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, "", nil, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || !isWaitGroup(sig.Recv().Type()) {
		return 0, "", nil, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Add":
		if len(call.Args) != 1 {
			return 0, "", nil, false
		}
		return evAdd, key, call.Args[0], true
	case "Done":
		return evDone, key, nil, true
	case "Wait":
		return evWait, key, nil, true
	}
	return 0, "", nil, false
}

// wgArgKey reports whether arg hands a tracked WaitGroup to the callee
// (&wg, or an existing *sync.WaitGroup value) and under which key.
func wgArgKey(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	arg = ast.Unparen(arg)
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		if isWaitGroup(pass.TypesInfo.TypeOf(u.X)) {
			return types.ExprString(u.X), true
		}
		return "", false
	}
	if t := pass.TypesInfo.TypeOf(arg); t != nil {
		if p, ok := t.(*types.Pointer); ok && isWaitGroup(p.Elem()) {
			return types.ExprString(arg), true
		}
	}
	return "", false
}

// isWaitGroup reports whether t is sync.WaitGroup (through one pointer).
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// wgParamKey returns the name of decl's first *sync.WaitGroup
// parameter, or "".
func wgParamKey(pass *analysis.Pass, decl *ast.FuncDecl) string {
	for _, f := range decl.Type.Params.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		p, ok := t.(*types.Pointer)
		if !ok || !isWaitGroup(p.Elem()) {
			continue
		}
		if len(f.Names) > 0 && f.Names[0].Name != "_" {
			return f.Names[0].Name
		}
	}
	return ""
}

// constInt evaluates an Add argument to a constant int.
func constInt(pass *analysis.Pass, e ast.Expr) (int, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	n, err := strconv.Atoi(tv.Value.ExactString())
	if err != nil {
		return 0, false
	}
	return n, true
}

// staticCallee resolves call to a declared function or method, or nil.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// rootVar resolves the base identifier of a selector chain to its
// variable, or nil.
func rootVar(pass *analysis.Pass, x ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[e].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// localWaitGroups collects the keys of WaitGroups declared inside body
// (not in nested function literals): the groups whose whole protocol
// this function owns, where a negative balance is provably a bug.
func localWaitGroups(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	locals := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if isWaitGroup(v.Type()) {
			locals[id.Name] = true
		}
		return true
	})
	return locals
}

// --- dataflow -------------------------------------------------------------

// wgLattice tracks per-group balance. Join on a diverging balance goes
// to unknown, which suppresses delta diagnostics — the analysis only
// speaks when every path agrees.
type wgLattice struct {
	a      *analyzer
	locals map[string]bool
}

func (wgLattice) Entry() groupStates { return groupStates{} }

func (wgLattice) Join(a, b groupStates) groupStates {
	out := groupStates{}
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		va, vb := a[k], b[k] // absent = zero state
		v := wgState{
			delta:   va.delta,
			unknown: va.unknown || vb.unknown || va.delta != vb.delta,
			waited:  va.waited || vb.waited,
		}
		if v != (wgState{}) {
			out[k] = v
		}
	}
	return out
}

func (wgLattice) Equal(a, b groupStates) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

func (l wgLattice) Transfer(n ast.Node, atExit bool, s groupStates) groupStates {
	for _, ev := range l.a.nodeEvents(n, atExit) {
		s = l.apply(s, ev)
	}
	return s
}

// apply folds one event into the state.
func (l wgLattice) apply(s groupStates, ev wgEvent) groupStates {
	st := s[ev.key]
	switch ev.kind {
	case evAdd:
		if ev.nOK {
			st.delta += ev.n
		} else {
			st.unknown = true
		}
	case evDone:
		st.delta--
	case evWait:
		st.waited = true
		st.delta = 0
		st.unknown = false
	case evEscape:
		if ev.fn != nil {
			if d, ok := l.a.calleeDelta(ev.fn); ok {
				st.delta += d
				break
			}
		}
		st.unknown = true
	}
	out := groupStates{}
	for k, v := range s {
		if k != ev.key {
			out[k] = v
		}
	}
	if st != (wgState{}) {
		out[ev.key] = st
	}
	return out
}

// --- misc -----------------------------------------------------------------

func applies(pkgPath string) bool {
	if allFlag {
		return true
	}
	for _, prefix := range strings.Split(modsFlag, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix != "" && (pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")) {
			return true
		}
	}
	return false
}
