// Package xwpkg consumes xwdep's WaitGroup helpers: the annotated one
// is applied through its imported fact, the unannotated one is an
// unverifiable escape.
package xwpkg

import (
	"sync"

	"xwdep"
)

func Good() {
	var wg sync.WaitGroup
	xwdep.Spawn(&wg)
	wg.Wait()
}

func Bad() {
	var wg sync.WaitGroup
	xwdep.Leak(&wg) // want `&wg escapes to Leak without a wgdelta annotation: its Add/Done balance is unverifiable`
	wg.Wait()
}
