// Package suppressed proves //lint:ignore swallows a wgbalance escape
// report while the analyzer stays live for other diagnostics.
package suppressed

import "sync"

func borrowed() {
	var wg sync.WaitGroup
	//lint:ignore wgbalance observe only inspects the group; it never calls Add or Done
	observe(&wg)
	wg.Wait()
}

func observe(wg *sync.WaitGroup) {
	_ = wg
}

func unbalanced() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Done() // want `wg\.Done without a matching Add`
}
