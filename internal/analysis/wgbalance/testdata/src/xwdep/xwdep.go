// Package xwdep exports one annotated WaitGroup helper (its wgdelta
// rides .vetx as a fact) and one unannotated one.
package xwdep

import "sync"

// wgdelta: 1 registers one background worker for the caller's group
func Spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { defer wg.Done() }()
}

// Leak takes a group but declares nothing about it.
func Leak(wg *sync.WaitGroup) {
	_ = wg
}
