// Package clean exercises wgbalance negatives: the canonical fan-out
// loop, a checked wgdelta helper, deferred Done via replay, and
// branch-dependent balances that go unknown instead of misfiring.
package clean

import "sync"

func fanout(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// wgdelta: 1 registers one background worker for the caller's group
func spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { defer wg.Done() }()
}

func useHelper() {
	var wg sync.WaitGroup
	spawn(&wg)
	wg.Wait()
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done() // a parameter's baseline is the caller's: no report
}

func branchy(b bool) {
	var wg sync.WaitGroup
	if b {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait() // joined balance is unknown: silent
}

func reuseAfterWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	helper := func() {}
	helper()
}
