// Package a exercises wgbalance true positives.
package a

import "sync"

func doneWithoutAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Done() // want `wg\.Done without a matching Add`
}

func addAfterWait() {
	var wg sync.WaitGroup
	wg.Wait()
	wg.Add(1) // want `wg\.Add after Wait on the same WaitGroup: reuse races with the returning Wait`
	wg.Done()
}

func addInGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `wg\.Add inside a spawned goroutine races with Wait: call Add before starting the goroutine`
		defer wg.Done()
	}()
	wg.Wait()
}

func escapes() {
	var wg sync.WaitGroup
	spawnUnannotated(&wg) // want `&wg escapes to spawnUnannotated without a wgdelta annotation: its Add/Done balance is unverifiable`
	wg.Wait()
}

func spawnUnannotated(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { defer wg.Done() }()
}

// wgdelta: 2 claims two workers but only registers one
func spawnTwo(wg *sync.WaitGroup) { // want `spawnTwo declares wgdelta: 2 but its computed Add/Done balance on wg is 1`
	wg.Add(1)
	go func() { defer wg.Done() }()
}
