// Package search implements the configuration-search problem of
// Definition 5: given a space of metric functions M, featurizations F and
// perturbations P, find the configuration (m, F, P) that maximizes
// surprising discoveries on target tables D — or, in the labeled variant,
// the configuration maximizing recall subject to a precision floor.
//
// The paper leaves this as its stated future work ("exploring the
// possibility of learning configurations for more accurate detection",
// §5); this package provides the first-step implementation: exhaustive
// evaluation of an explicit candidate list, with each candidate trained
// and scored end-to-end.
package search

import (
	"context"
	"sort"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/table"
)

// Candidate is one configuration (m, F, P), packaged as the detector set
// it induces.
type Candidate struct {
	Name      string
	Detectors func(cfg core.Config) []core.Detector
}

// Result scores one candidate.
type Result struct {
	Name string
	// Discoveries is |{D ∈ targets : min_O LR < α}| — Equation 5's
	// objective: the number of target tables with at least one
	// statistically surprising perturbation.
	Discoveries int
	// Findings is the total finding count across targets.
	Findings int
	// Precision and Recall are filled by the labeled variant (zero
	// otherwise).
	Precision float64
	Recall    float64
}

// Label mirrors the injector's ground truth without importing datagen.
type Label struct {
	Table  string
	Column string
	Row    int
}

// Search trains each candidate on bg and counts surprising discoveries on
// the targets (the unlabeled objective of Definition 5). Results are
// sorted by descending discoveries.
func Search(ctx context.Context, cfg core.Config, bg *corpus.Corpus, targets []*table.Table, cands []Candidate) ([]Result, error) {
	results := make([]Result, 0, len(cands))
	for _, cand := range cands {
		findings, err := run(ctx, cfg, bg, targets, cand)
		if err != nil {
			return nil, err
		}
		tablesHit := map[string]bool{}
		for _, f := range findings {
			tablesHit[f.Table] = true
		}
		results = append(results, Result{
			Name:        cand.Name,
			Discoveries: len(tablesHit),
			Findings:    len(findings),
		})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Discoveries > results[j].Discoveries })
	return results, nil
}

// SearchLabeled is the labeled variant: candidates are ranked by recall
// among those meeting the precision floor; candidates below the floor
// rank after all compliant ones (by precision). This is the paper's
// "maximizing recall, with a precision greater than [a bar]" objective.
func SearchLabeled(ctx context.Context, cfg core.Config, bg *corpus.Corpus, targets []*table.Table, labels []Label, precisionFloor float64, cands []Candidate) ([]Result, error) {
	idx := map[string]map[int]bool{}
	for _, l := range labels {
		k := l.Table + "\x00" + l.Column
		if idx[k] == nil {
			idx[k] = map[int]bool{}
		}
		idx[k][l.Row] = true
	}
	results := make([]Result, 0, len(cands))
	for _, cand := range cands {
		findings, err := run(ctx, cfg, bg, targets, cand)
		if err != nil {
			return nil, err
		}
		hits := 0
		matched := map[string]bool{}
		for _, f := range findings {
			if matches(idx, f) {
				hits++
				for _, r := range f.Rows {
					matched[f.Table+"\x00"+f.Column+"\x00"+itoa(r)] = true
				}
			}
		}
		res := Result{Name: cand.Name, Findings: len(findings)}
		if len(findings) > 0 {
			res.Precision = float64(hits) / float64(len(findings))
		}
		if len(labels) > 0 {
			recallHits := 0
			for _, l := range labels {
				if matched[l.Table+"\x00"+l.Column+"\x00"+itoa(l.Row)] {
					recallHits++
				}
			}
			res.Recall = float64(recallHits) / float64(len(labels))
		}
		results = append(results, res)
	}
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i], results[j]
		aOK, bOK := a.Precision >= precisionFloor, b.Precision >= precisionFloor
		if aOK != bOK {
			return aOK
		}
		if aOK {
			return a.Recall > b.Recall
		}
		return a.Precision > b.Precision
	})
	return results, nil
}

func run(ctx context.Context, cfg core.Config, bg *corpus.Corpus, targets []*table.Table, cand Candidate) ([]core.Finding, error) {
	dets := cand.Detectors(cfg)
	m, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		return nil, err
	}
	pred := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()})
	return pred.DetectAll(ctx, targets), nil
}

func matches(idx map[string]map[int]bool, f core.Finding) bool {
	cols := []string{f.Column}
	for i, r := range f.Column {
		if r == '→' {
			cols = []string{f.Column[:i], f.Column[i+len("→"):]}
			break
		}
	}
	for _, col := range cols {
		rows := idx[f.Table+"\x00"+col]
		for _, r := range f.Rows {
			if rows[r] {
				return true
			}
		}
	}
	return false
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
