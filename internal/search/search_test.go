package search

import (
	"context"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
)

// mismatchedDetector pairs the uniqueness perturbation with the MPD-style
// orientation the paper's Definition 5 example warns about: a perturbation
// that cannot move the metric produces no surprising LRs.
func outlierCandidates(cfg core.Config) []Candidate {
	mk := func(name string, metric detectors.Dispersion) Candidate {
		return Candidate{
			Name: name,
			Detectors: func(cfg core.Config) []core.Detector {
				return []core.Detector{&detectors.Outlier{Cfg: cfg, Metric: metric}}
			},
		}
	}
	return []Candidate{
		mk("outlier-MAD", detectors.DispersionMAD),
		mk("outlier-SD", detectors.DispersionSD),
		mk("outlier-IQR", detectors.DispersionIQR),
	}
}

func fixtures(t *testing.T) (*corpus.Corpus, *datagen.Result) {
	t.Helper()
	train := datagen.Spec{Name: "bg", Profile: datagen.ProfileWeb, NumTables: 1500,
		AvgRows: 20, AvgCols: 4.6, ErrorRate: 0.005, Seed: 21}
	test := datagen.Spec{Name: "tgt", Profile: datagen.ProfileWeb, NumTables: 400,
		AvgRows: 20, AvgCols: 4.6, ErrorRate: 1, Seed: 77}
	bg := corpus.New(train.Name, datagen.Generate(train).Tables)
	return bg, datagen.Generate(test)
}

func TestSearchCountsDiscoveries(t *testing.T) {
	bg, tgt := fixtures(t)
	cfg := core.DefaultConfig()
	results, err := Search(context.Background(), cfg, bg, tgt.Tables, outlierCandidates(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		t.Logf("%-14s discoveries=%d findings=%d", r.Name, r.Discoveries, r.Findings)
		if r.Findings < r.Discoveries {
			t.Errorf("%s: findings %d < discoveries %d", r.Name, r.Findings, r.Discoveries)
		}
	}
	if results[0].Discoveries == 0 {
		t.Error("best candidate found nothing")
	}
	// Sorted descending.
	for i := 1; i < len(results); i++ {
		if results[i].Discoveries > results[i-1].Discoveries {
			t.Error("results not sorted by discoveries")
		}
	}
}

func TestSearchLabeledPrefersPreciseConfig(t *testing.T) {
	bg, tgt := fixtures(t)
	cfg := core.DefaultConfig()
	labels := make([]Label, 0, len(tgt.Labels))
	for _, l := range tgt.Labels {
		labels = append(labels, Label{Table: l.Table, Column: l.Column, Row: l.Row})
	}
	results, err := SearchLabeled(context.Background(), cfg, bg, tgt.Tables, labels, 0.5, outlierCandidates(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-14s precision=%.2f recall=%.3f findings=%d", r.Name, r.Precision, r.Recall, r.Findings)
	}
	var mad, sd Result
	for _, r := range results {
		switch r.Name {
		case "outlier-MAD":
			mad = r
		case "outlier-SD":
			sd = r
		}
	}
	// The robust metric must not lose to SD on both axes.
	if mad.Precision < sd.Precision && mad.Recall < sd.Recall {
		t.Errorf("MAD (p=%.2f r=%.3f) dominated by SD (p=%.2f r=%.3f)",
			mad.Precision, mad.Recall, sd.Precision, sd.Recall)
	}
	// Ranking puts precision-floor-compliant candidates first.
	if len(results) > 1 && results[0].Precision < 0.5 && results[1].Precision >= 0.5 {
		t.Error("compliant candidate ranked below non-compliant one")
	}
}

func TestSearchLabeledEmptyLabels(t *testing.T) {
	bg, tgt := fixtures(t)
	cfg := core.DefaultConfig()
	results, err := SearchLabeled(context.Background(), cfg, bg, tgt.Tables, nil, 0.9, outlierCandidates(cfg)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Recall != 0 {
		t.Error("recall with no labels should be 0")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1000: "1000"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q", v, got)
		}
	}
}
