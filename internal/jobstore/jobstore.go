// Package jobstore is the daemon's crash-safe async job queue: a large
// upload is spooled to disk, a job id returns immediately, and a
// bounded worker pool scans the spool chunk-at-a-time with the
// resumable SourceScan, checkpointing the whole scan state after every
// chunk. A killed daemon reopens the store, re-enqueues the jobs it
// finds mid-flight, verifies the saved position against the chunk
// fingerprints of the reopened spool (the PR-9 .ucol fingerprints,
// recomputed for CSV/NDJSON spools), and continues — the finished
// findings are byte-identical to an uninterrupted run, the serving-tier
// analogue of checkpointed training's kill→resume contract.
package jobstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/obs"
)

// stateMagic heads a scan checkpoint file: a rolling fingerprint of the
// chunks consumed so far, then the serialized SourceScan frame.
var stateMagic = []byte("UNIDETECT-JOBS\x01")

// State is a job's lifecycle position. queued and running survive a
// crash (the job resumes); done, failed and degraded are terminal.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateDegraded State = "degraded" // finished, but some chunks were dropped
)

// Terminal reports whether a job in state s will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateDegraded
}

// Record is one job's durable metadata, persisted as JSON next to the
// spooled input. Progress truth lives in the scan checkpoint; the
// record carries identity and the terminal outcome.
type Record struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Name     string `json:"name"`   // table name findings report
	Format   string `json:"format"` // csv | ndjson | ucol
	State    State  `json:"state"`
	Chunks   int    `json:"chunks,omitempty"`   // consumed at completion
	Degraded int    `json:"degraded,omitempty"` // chunks dropped by faults
	Rows     int    `json:"rows,omitempty"`
	Findings int    `json:"findings,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Config wires a Store.
type Config struct {
	// Dir is the job spool root; one subdirectory per job.
	Dir string
	// Workers bounds the scan worker pool; <= 0 means 2.
	Workers int
	// ChunkRows is the scan chunk geometry (0 = colstore default). It
	// must stay stable across restarts for checkpoints to resume.
	ChunkRows int
	// ChunkDelay is slept between chunks; the e2e harness uses it to
	// widen the kill window. 0 = no throttle.
	ChunkDelay time.Duration
	// Model returns the model scans run under. Called once per job
	// (re)start, so a mid-queue reload affects jobs not yet started.
	Model func() *unidetect.Model
	// Inject, when non-nil, receives a Hit on every job transition and
	// every chunk (sites "jobstore/...").
	Inject *faultinject.Injector
	// Logf, when non-nil, receives job lifecycle logs.
	Logf func(string, ...any)
	// Obs, when non-nil, receives unidetect_jobs_* metrics.
	Obs *obs.Registry
}

type metrics struct {
	submitted *obs.Counter
	finished  *obs.CounterVec
	chunks    *obs.Counter
	resumes   *obs.Counter
	running   *obs.Gauge
}

// newMetrics registers the store's series. Every unidetect_jobs_* name
// literal lives here and nowhere else.
func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		submitted: reg.Counter("unidetect_jobs_submitted_total", "async jobs accepted"),
		finished:  reg.CounterVec("unidetect_jobs_finished_total", "async jobs reaching a terminal state", "state"),
		chunks:    reg.Counter("unidetect_jobs_chunks_total", "chunks folded by job workers"),
		resumes:   reg.Counter("unidetect_jobs_resumes_total", "jobs resumed from an on-disk checkpoint"),
		running:   reg.Gauge("unidetect_jobs_running", "jobs currently being scanned"),
	}
}

// job is a Record plus its queue bookkeeping.
type job struct {
	rec Record
}

// Store is the live job queue. Safe for concurrent use.
type Store struct {
	cfg Config
	m   *metrics

	mu    sync.Mutex
	cond  *sync.Cond
	jobs  map[string]*Record
	queue []string // job ids awaiting a worker
	seq   int
	open  bool

	wg sync.WaitGroup
}

// Open loads the spool directory, re-enqueues every non-terminal job it
// finds, and starts the worker pool. The caller must Close the store to
// join the workers.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobstore: Dir is required")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("jobstore: Model provider is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: create spool dir: %w", err)
	}
	s := &Store{cfg: cfg, m: newMetrics(cfg.Obs), jobs: map[string]*Record{}, open: true}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover loads every job directory; non-terminal jobs re-enter the
// queue in id order so restarts process them deterministically.
func (s *Store) recover() error {
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("jobstore: read spool dir: %w", err)
	}
	var resumed []string
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "job-") {
			continue
		}
		// Bump the id sequence past every job-shaped directory, readable
		// or not, so new ids never collide with leftovers.
		var n int
		if _, err := fmt.Sscanf(e.Name(), "job-%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
		rec, err := readRecord(s.recordPath(e.Name()))
		if err != nil {
			s.logf("jobstore: skipping unreadable job %s: %v", e.Name(), err)
			continue
		}
		r := rec
		s.jobs[rec.ID] = &r
		if !rec.State.Terminal() {
			resumed = append(resumed, rec.ID)
		}
	}
	sort.Strings(resumed)
	for _, id := range resumed {
		s.m.resumes.Inc()
		s.jobs[id].State = StateQueued
		s.queue = append(s.queue, id)
	}
	return nil
}

// Close stops accepting work and joins the workers. A job mid-scan
// finishes its current chunk, checkpoints, and is left running on disk
// for the next Open to resume.
func (s *Store) Close() {
	s.mu.Lock()
	s.open = false
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Store) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Store) dir(id string) string        { return filepath.Join(s.cfg.Dir, id) }
func (s *Store) recordPath(id string) string { return filepath.Join(s.cfg.Dir, id, "record.json") }
func (s *Store) inputPath(id, format string) string {
	return filepath.Join(s.cfg.Dir, id, "input."+format)
}
func (s *Store) statePath(id string) string { return filepath.Join(s.cfg.Dir, id, "scan.state") }
func (s *Store) findingsPath(id string) string {
	return filepath.Join(s.cfg.Dir, id, "findings.ndjson")
}

// Submit spools body to disk and enqueues a scan. format must be one of
// csv, ndjson, ucol (the HTTP layer maps content types). The returned
// record is the job's initial queued state.
func (s *Store) Submit(tenant, name, format string, body io.Reader) (Record, error) {
	switch format {
	case "csv", "ndjson", "ucol":
	default:
		return Record{}, fmt.Errorf("jobstore: unsupported format %q", format)
	}
	if err := s.inject("jobstore/spool"); err != nil {
		return Record{}, err
	}
	s.mu.Lock()
	if !s.open {
		s.mu.Unlock()
		return Record{}, fmt.Errorf("jobstore: store is closed")
	}
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	s.mu.Unlock()

	if err := os.MkdirAll(s.dir(id), 0o755); err != nil {
		return Record{}, fmt.Errorf("jobstore: create job dir: %w", err)
	}
	// Spool to a temp name and rename, so a crash mid-upload leaves no
	// input file and recovery discards the job as unreadable.
	spool := s.inputPath(id, format)
	tmp := spool + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return Record{}, fmt.Errorf("jobstore: spool input: %w", err)
	}
	_, err = io.Copy(f, body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return Record{}, fmt.Errorf("jobstore: spool input: %w", err)
	}
	if err := os.Rename(tmp, spool); err != nil {
		return Record{}, fmt.Errorf("jobstore: commit input: %w", err)
	}

	rec := Record{ID: id, Tenant: tenant, Name: name, Format: format, State: StateQueued}
	if err := writeRecord(s.recordPath(id), rec); err != nil {
		return Record{}, err
	}
	s.m.submitted.Inc()
	s.mu.Lock()
	r := rec
	s.jobs[id] = &r
	s.queue = append(s.queue, id)
	s.cond.Signal()
	s.mu.Unlock()
	return rec, nil
}

// Get returns the live record for a tenant's job. Jobs are
// tenant-scoped: asking for another tenant's id reports not-found,
// never the record.
func (s *Store) Get(tenant, id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok || r.Tenant != tenant {
		return Record{}, false
	}
	return *r, true
}

// Findings opens the completed findings stream for a tenant's job.
func (s *Store) Findings(tenant, id string) (io.ReadCloser, error) {
	rec, ok := s.Get(tenant, id)
	if !ok {
		return nil, fmt.Errorf("jobstore: no such job")
	}
	if rec.State != StateDone && rec.State != StateDegraded {
		return nil, fmt.Errorf("jobstore: job is %s", rec.State)
	}
	f, err := os.Open(s.findingsPath(id))
	if err != nil {
		return nil, fmt.Errorf("jobstore: open findings: %w", err)
	}
	return f, nil
}

func (s *Store) inject(site string) error {
	if s.cfg.Inject == nil {
		return nil
	}
	return s.cfg.Inject.Hit(context.Background(), site)
}

// worker pops queued job ids until Close.
func (s *Store) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.open && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if !s.open {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		s.jobs[id].State = StateRunning
		rec := *s.jobs[id]
		s.mu.Unlock()

		s.m.running.Add(1)
		s.runJob(rec)
		s.m.running.Add(-1)
	}
}

// setState publishes a transition to memory and disk. Disk errors are
// logged, not fatal: the in-memory record stays authoritative for the
// process lifetime and recovery re-runs the job at worst.
func (s *Store) setState(rec Record) {
	s.mu.Lock()
	*s.jobs[rec.ID] = rec
	s.mu.Unlock()
	if err := writeRecord(s.recordPath(rec.ID), rec); err != nil {
		s.logf("jobstore: persist %s: %v", rec.ID, err)
	}
}

func (s *Store) fail(rec Record, err error) {
	rec.State = StateFailed
	rec.Error = err.Error()
	s.setState(rec)
	s.m.finished.With(string(StateFailed)).Inc()
	s.logf("jobstore: %s failed: %v", rec.ID, err)
}

// runJob scans one job to a terminal state, checkpointing every chunk.
func (s *Store) runJob(rec Record) {
	if err := s.inject("jobstore/start"); err != nil {
		s.fail(rec, err)
		return
	}
	if err := writeRecord(s.recordPath(rec.ID), rec); err != nil {
		s.fail(rec, err)
		return
	}
	model := s.cfg.Model()
	if model == nil {
		s.fail(rec, fmt.Errorf("no model available"))
		return
	}

	defer func() {
		if p := recover(); p != nil {
			s.fail(rec, fmt.Errorf("scan panicked: %v", p))
		}
	}()

	src, err := s.openInput(rec)
	if err != nil {
		s.fail(rec, err)
		return
	}
	defer src.Close()

	scan, roll, err := s.resumeOrStart(model, rec, &src)
	if err != nil {
		s.fail(rec, err)
		return
	}

	rel, _ := src.(colstore.Releaser)
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.fail(rec, fmt.Errorf("read chunk %d: %w", scan.Pos(), err))
			return
		}
		roll = rollChunk(roll, c)
		if ierr := s.inject("jobstore/chunk"); ierr != nil {
			// An injected chunk fault degrades that chunk, mirroring the
			// sync scan path: its rows vanish, the stream continues.
			scan.SkipDegraded()
		} else {
			scan.Fold(c)
			s.m.chunks.Inc()
		}
		if rel != nil {
			rel.Release(c)
		}
		if err := s.checkpoint(rec.ID, scan, roll); err != nil {
			s.fail(rec, err)
			return
		}
		if s.cfg.ChunkDelay > 0 {
			time.Sleep(s.cfg.ChunkDelay)
		}
		if s.closing() {
			// Leave the job running on disk; the next Open resumes it
			// from this checkpoint.
			s.logf("jobstore: %s parked at chunk %d for shutdown", rec.ID, scan.Pos())
			return
		}
	}

	if err := s.inject("jobstore/finish"); err != nil {
		s.fail(rec, err)
		return
	}
	findings, err := scan.Finish(src.ColumnNames())
	if err != nil {
		s.fail(rec, err)
		return
	}
	if err := writeFindings(s.findingsPath(rec.ID), findings); err != nil {
		s.fail(rec, err)
		return
	}
	rec.Chunks = scan.Pos()
	rec.Degraded = scan.Degraded()
	rec.Rows = scan.Rows()
	rec.Findings = len(findings)
	rec.State = StateDone
	if rec.Degraded > 0 {
		rec.State = StateDegraded
	}
	s.setState(rec)
	s.m.finished.With(string(rec.State)).Inc()
	_ = os.Remove(s.statePath(rec.ID)) // checkpoint is spent
	s.logf("jobstore: %s %s (%d chunks, %d findings)", rec.ID, rec.State, rec.Chunks, rec.Findings)
}

func (s *Store) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.open
}

func (s *Store) openInput(rec Record) (colstore.Source, error) {
	path := s.inputPath(rec.ID, rec.Format)
	opts := colstore.Options{ChunkRows: s.cfg.ChunkRows}
	switch rec.Format {
	case "csv":
		return colstore.OpenCSVFile(path, opts)
	case "ndjson":
		return colstore.OpenNDJSONFile(path, opts)
	case "ucol":
		return colstore.OpenUcolFile(path)
	}
	return nil, fmt.Errorf("jobstore: unsupported format %q", rec.Format)
}

// rollChunk folds one chunk's column fingerprints into the rolling
// progress fingerprint — the same per-chunk fingerprints the .ucol
// format stamps into its frames.
func rollChunk(roll [2]uint64, c *colstore.Chunk) [2]uint64 {
	for j := 0; j < c.NumCols(); j++ {
		h1, h2 := c.Col(j).Fingerprint()
		roll[0] = roll[0]*0x100000001b3 ^ h1
		roll[1] = roll[1]*0x100000001b3 ^ h2
	}
	return roll
}

// resumeOrStart loads the job's checkpoint if one exists and still
// matches the spool. On any mismatch — torn state, changed input, a
// spool shorter than the saved position — the scan restarts from zero;
// a checkpoint that cannot be trusted must never resume into garbage.
// The source is reopened (via the pointer) when a bad resume consumed
// positions from it.
func (s *Store) resumeOrStart(model *unidetect.Model, rec Record, src *colstore.Source) (*unidetect.SourceScan, [2]uint64, error) {
	fresh := func() (*unidetect.SourceScan, [2]uint64, error) {
		return model.NewSourceScan(rec.Name), [2]uint64{}, nil
	}
	data, err := os.ReadFile(s.statePath(rec.ID))
	if err != nil {
		return fresh()
	}
	scan, want, ok := decodeState(model, data)
	if !ok {
		s.logf("jobstore: %s checkpoint unreadable; restarting scan", rec.ID)
		return fresh()
	}
	// Replay the consumed prefix of the spool, recomputing the rolling
	// fingerprint; only an exact match resumes.
	var roll [2]uint64
	for i := 0; i < scan.Pos(); i++ {
		c, err := (*src).Next()
		if err != nil {
			s.logf("jobstore: %s spool shorter than checkpoint; restarting scan", rec.ID)
			return s.restart(rec, src)
		}
		roll = rollChunk(roll, c)
	}
	if roll != want {
		s.logf("jobstore: %s spool fingerprint mismatch; restarting scan", rec.ID)
		return s.restart(rec, src)
	}
	s.logf("jobstore: %s resuming at chunk %d", rec.ID, scan.Pos())
	return scan, roll, nil
}

// restart reopens the spool from the top for a from-zero scan after a
// failed resume.
func (s *Store) restart(rec Record, src *colstore.Source) (*unidetect.SourceScan, [2]uint64, error) {
	_ = (*src).Close()
	reopened, err := s.openInput(rec)
	if err != nil {
		return nil, [2]uint64{}, err
	}
	*src = reopened
	model := s.cfg.Model()
	return model.NewSourceScan(rec.Name), [2]uint64{}, nil
}

// checkpoint atomically persists the scan state plus the rolling
// fingerprint of everything consumed so far.
func (s *Store) checkpoint(id string, scan *unidetect.SourceScan, roll [2]uint64) error {
	var buf bytes.Buffer
	buf.Write(stateMagic)
	var fp [16]byte
	binary.BigEndian.PutUint64(fp[:8], roll[0])
	binary.BigEndian.PutUint64(fp[8:], roll[1])
	buf.Write(fp[:])
	if err := scan.Save(&buf); err != nil {
		return fmt.Errorf("jobstore: encode checkpoint: %w", err)
	}
	path := s.statePath(id)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("jobstore: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobstore: commit checkpoint: %w", err)
	}
	return nil
}

// decodeState parses a checkpoint file; ok=false means restart.
func decodeState(model *unidetect.Model, data []byte) (*unidetect.SourceScan, [2]uint64, bool) {
	if len(data) < len(stateMagic)+16 || !bytes.Equal(data[:len(stateMagic)], stateMagic) {
		return nil, [2]uint64{}, false
	}
	rest := data[len(stateMagic):]
	var roll [2]uint64
	roll[0] = binary.BigEndian.Uint64(rest[:8])
	roll[1] = binary.BigEndian.Uint64(rest[8:16])
	scan, err := model.LoadSourceScan(bytes.NewReader(rest[16:]))
	if err != nil {
		return nil, [2]uint64{}, false
	}
	return scan, roll, true
}

// writeRecord persists a record via write-temp-then-rename.
func writeRecord(path string, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: encode record: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobstore: write record: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobstore: commit record: %w", err)
	}
	return nil
}

func readRecord(path string) (Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return Record{}, fmt.Errorf("jobstore: decode record: %w", err)
	}
	if rec.ID == "" || rec.State == "" {
		return Record{}, fmt.Errorf("jobstore: record missing id or state")
	}
	return rec, nil
}

// findingWire is one NDJSON findings line, field-compatible with the
// sync detect endpoint's JSON.
type findingWire struct {
	Class  string   `json:"class"`
	Table  string   `json:"table"`
	Column string   `json:"column"`
	Rows   []int    `json:"rows"`
	Values []string `json:"values,omitempty"`
	Score  float64  `json:"score"`
	Detail string   `json:"detail,omitempty"`
}

// writeFindings persists the finished findings as NDJSON, one finding
// per line, via write-temp-then-rename. The byte stream is a pure
// function of the findings, which is what makes resume byte-identity
// checkable end to end.
func writeFindings(path string, findings []unidetect.Finding) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range findings {
		f := &findings[i]
		// Same wire shape as the sync /v1/detect findings, so a client
		// can parse both streams with one decoder.
		if err := enc.Encode(findingWire{
			Class: f.Class.String(), Table: f.Table, Column: f.Column,
			Rows: f.Rows, Values: f.Values, Score: f.Score, Detail: f.Detail,
		}); err != nil {
			return fmt.Errorf("jobstore: encode finding: %w", err)
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("jobstore: write findings: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobstore: commit findings: %w", err)
	}
	return nil
}
