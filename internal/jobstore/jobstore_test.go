package jobstore

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/table"
)

var (
	modelOnce sync.Once
	model     *unidetect.Model
)

// testModel trains one small shared model; jobs only need findings to
// exist, not to be plentiful.
func testModel(t testing.TB) *unidetect.Model {
	modelOnce.Do(func() {
		bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 900, 19)
		m, err := unidetect.Train(context.Background(), bg, nil)
		if err != nil {
			t.Fatalf("train: %v", err)
		}
		model = m
	})
	return model
}

// errorCSV renders an error-injected generated table as CSV.
func errorCSV(t testing.TB, rows int, seed int64) []byte {
	t.Helper()
	tab := datagen.Generate(datagen.Spec{Name: "upload", Profile: datagen.ProfileWeb,
		NumTables: 1, AvgRows: float64(rows), AvgCols: 5, ErrorRate: 2, Seed: seed}).Tables[0]
	return tableCSV(t, tab)
}

func tableCSV(t testing.TB, tab *table.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	hdr := make([]string, tab.NumCols())
	for j, c := range tab.Columns {
		hdr[j] = c.Name
	}
	if err := w.Write(hdr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.NumRows(); i++ {
		if err := w.Write(tab.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openStore(t *testing.T, dir string, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{
		Dir:       dir,
		Workers:   2,
		ChunkRows: 32,
		Model:     func() *unidetect.Model { return testModel(t) },
		Logf:      t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitTerminal(t *testing.T, s *Store, tenant, id string) Record {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := s.Get(tenant, id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if rec.State.Terminal() {
			return rec
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return Record{}
}

func readFindings(t *testing.T, s *Store, tenant, id string) []findingWire {
	t.Helper()
	rc, err := s.Findings(tenant, id)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var out []findingWire
	dec := json.NewDecoder(rc)
	for dec.More() {
		var f findingWire
		if err := dec.Decode(&f); err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

// toWire projects sync-path findings onto the NDJSON wire shape so
// they compare exactly against a job's streamed lines.
func toWire(fs []unidetect.Finding) []findingWire {
	var out []findingWire
	for _, f := range fs {
		out = append(out, findingWire{
			Class: f.Class.String(), Table: f.Table, Column: f.Column,
			Rows: f.Rows, Values: f.Values, Score: f.Score, Detail: f.Detail,
		})
	}
	return out
}

// TestJobMatchesDetectSource: an async job's findings must be exactly
// what a sync DetectSource over the same upload yields.
func TestJobMatchesDetectSource(t *testing.T) {
	body := errorCSV(t, 300, 11)
	s := openStore(t, t.TempDir(), nil)
	rec, err := s.Submit("acme", "upload", "csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, "acme", rec.ID)
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}
	got := readFindings(t, s, "acme", rec.ID)

	src, err := colstore.NewCSVSource("upload", bytes.NewReader(body), colstore.Options{ChunkRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	want, err := testModel(t).DetectSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("sync scan found nothing; test has no power")
	}
	if !reflect.DeepEqual(got, toWire(want)) {
		t.Fatalf("async job diverged from DetectSource:\n got %+v\nwant %+v", got, toWire(want))
	}
	if final.Findings != len(want) || final.Rows == 0 {
		t.Fatalf("record says %d findings / %d rows, want %d findings", final.Findings, final.Rows, len(want))
	}
}

// TestParkResumeByteIdentical is the store-level resume contract: a
// store closed mid-job parks it at the last checkpointed chunk, a fresh
// Open resumes it, and the finished findings file is byte-identical to
// an uninterrupted run's.
func TestParkResumeByteIdentical(t *testing.T) {
	body := errorCSV(t, 2000, 13)

	// Control: uninterrupted run.
	ctrlDir := t.TempDir()
	ctrl := openStore(t, ctrlDir, nil)
	crec, err := ctrl.Submit("acme", "upload", "csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, ctrl, "acme", crec.ID); got.State != StateDone {
		t.Fatalf("control job finished %s", got.State)
	}
	want, err := os.ReadFile(ctrl.findingsPath(crec.ID))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: throttled chunks so Close lands mid-scan.
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, Workers: 1, ChunkRows: 32, ChunkDelay: 3 * time.Millisecond,
		Model: func() *unidetect.Model { return testModel(t) },
		Logf:  t.Logf,
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Submit("acme", "upload", "csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first checkpoint, then yank the store.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(s.statePath(rec.ID)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never checkpointed")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	if got, _ := s.Get("acme", rec.ID); got.State.Terminal() {
		t.Skip("job finished before the store closed; park window missed")
	}

	// Resume without the throttle; the checkpoint carries the progress.
	cfg.ChunkDelay = 0
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	final := waitTerminal(t, s2, "acme", rec.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job finished %s (%s)", final.State, final.Error)
	}
	got, err := os.ReadFile(s2.findingsPath(rec.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed findings differ from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("control run found nothing; test has no power")
	}
}

// TestCorruptCheckpointRestartsCleanly: a torn checkpoint must restart
// the scan from zero, still finishing with the uninterrupted findings.
func TestCorruptCheckpointRestartsCleanly(t *testing.T) {
	body := errorCSV(t, 600, 17)
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, Workers: 1, ChunkRows: 32, ChunkDelay: 3 * time.Millisecond,
		Model: func() *unidetect.Model { return testModel(t) },
		Logf:  t.Logf,
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Submit("acme", "upload", "csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(s.statePath(rec.ID)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never checkpointed")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	if got, _ := s.Get("acme", rec.ID); got.State.Terminal() {
		t.Skip("job finished before the store closed; park window missed")
	}

	// Tear the checkpoint tail.
	state := s.statePath(rec.ID)
	b, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(state, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.ChunkDelay = 0
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	final := waitTerminal(t, s2, "acme", rec.ID)
	if final.State != StateDone {
		t.Fatalf("restarted job finished %s (%s)", final.State, final.Error)
	}
	got := readFindings(t, s2, "acme", rec.ID)
	src, err := colstore.NewCSVSource("upload", bytes.NewReader(body), colstore.Options{ChunkRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	want, err := testModel(t).DetectSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, toWire(want)) {
		t.Fatal("restarted-from-corrupt-checkpoint findings diverged")
	}
}

// TestTenantScoping: a job is invisible to every other tenant.
func TestTenantScoping(t *testing.T) {
	s := openStore(t, t.TempDir(), nil)
	rec, err := s.Submit("acme", "upload", "csv", bytes.NewReader(errorCSV(t, 60, 19)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("globex", rec.ID); ok {
		t.Fatal("another tenant's Get saw the job")
	}
	if _, err := s.Findings("globex", rec.ID); err == nil {
		t.Fatal("another tenant's Findings opened the job")
	}
	waitTerminal(t, s, "acme", rec.ID)
	if _, ok := s.Get("globex", rec.ID); ok {
		t.Fatal("another tenant's Get saw the finished job")
	}
}

// TestInjectedChunkFaultDegrades: a chunk fault drops that chunk and
// the job lands degraded, mirroring the sync scan's chaos semantics.
func TestInjectedChunkFaultDegrades(t *testing.T) {
	inj := faultinject.New(1, faultinject.Rule{
		Site: "jobstore/chunk", Hits: []int{2},
		Fault: faultinject.Fault{Err: errors.New("chunk dropped")},
	})
	s := openStore(t, t.TempDir(), func(c *Config) {
		c.Inject = inj
		c.Obs = obs.NewRegistry()
	})
	rec, err := s.Submit("acme", "upload", "csv", bytes.NewReader(errorCSV(t, 300, 23)))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, "acme", rec.ID)
	if final.State != StateDegraded || final.Degraded != 1 {
		t.Fatalf("job finished %s with %d degraded chunks, want degraded/1", final.State, final.Degraded)
	}
	if rc, err := s.Findings("acme", rec.ID); err != nil {
		t.Fatalf("degraded job findings unreadable: %v", err)
	} else {
		rc.Close()
	}
	if v := s.m.finished.With(string(StateDegraded)).Value(); v != 1 {
		t.Fatalf("finished{degraded} = %d, want 1", v)
	}
}

// TestInjectedStartFaultFails: a fault on the start transition fails
// the job with the injected error recorded.
func TestInjectedStartFaultFails(t *testing.T) {
	inj := faultinject.New(1, faultinject.Rule{
		Site: "jobstore/start", Hits: []int{1},
		Fault: faultinject.Fault{Err: errors.New("start refused")},
	})
	s := openStore(t, t.TempDir(), func(c *Config) { c.Inject = inj })
	rec, err := s.Submit("acme", "upload", "csv", bytes.NewReader(errorCSV(t, 60, 29)))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, "acme", rec.ID)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("job finished %s (%q), want failed with error", final.State, final.Error)
	}
	if _, err := s.Findings("acme", rec.ID); err == nil {
		t.Fatal("failed job served findings")
	}
}

func TestSubmitRejectsBadInput(t *testing.T) {
	s := openStore(t, t.TempDir(), nil)
	if _, err := s.Submit("acme", "u", "parquet", bytes.NewReader(nil)); err == nil {
		t.Fatal("unknown format accepted")
	}
	s.Close()
	if _, err := s.Submit("acme", "u", "csv", bytes.NewReader(nil)); err == nil {
		t.Fatal("closed store accepted a job")
	}
}

// TestRecoverSkipsGarbageDirs: stray files and unreadable job dirs in
// the spool must not prevent the store from opening.
func TestRecoverSkipsGarbageDirs(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "job-000001"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-000001", "record.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir, nil)
	// The unreadable job is skipped, and new ids never collide with it.
	rec, err := s.Submit("acme", "upload", "csv", bytes.NewReader(errorCSV(t, 60, 31)))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID == "job-000001" {
		t.Fatal("new job reused a garbage dir id")
	}
	waitTerminal(t, s, "acme", rec.ID)
}
