package fdiscover

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func col(name string, vals ...string) *table.Column { return table.NewColumn(name, vals) }

func TestNewPartitionStripsSingletons(t *testing.T) {
	p := NewPartition([]string{"a", "b", "a", "c", "b", "d"})
	if p.NumClasses() != 2 {
		t.Fatalf("classes = %d", p.NumClasses())
	}
	if p.Size() != 4 {
		t.Errorf("size = %d", p.Size())
	}
	if got := p.classes[0]; !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("class 0 = %v", got)
	}
	if got := p.classes[1]; !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("class 1 = %v", got)
	}
}

func TestKeyError(t *testing.T) {
	unique := NewPartition([]string{"a", "b", "c", "d"})
	if unique.KeyError() != 0 {
		t.Errorf("unique KeyError = %v", unique.KeyError())
	}
	oneDup := NewPartition([]string{"a", "b", "a", "c"})
	if oneDup.KeyError() != 0.25 {
		t.Errorf("one-dup KeyError = %v", oneDup.KeyError())
	}
	constant := NewPartition([]string{"x", "x", "x", "x"})
	if constant.KeyError() != 0.75 {
		t.Errorf("constant KeyError = %v", constant.KeyError())
	}
}

func TestIntersect(t *testing.T) {
	// X = (a a a b b), Y = (1 1 2 1 1): X∪Y classes {0,1} and {3,4}.
	px := NewPartition([]string{"a", "a", "a", "b", "b"})
	py := NewPartition([]string{"1", "1", "2", "1", "1"})
	got := px.Intersect(py)
	if got.NumClasses() != 2 {
		t.Fatalf("classes = %v", got.classes)
	}
	if !reflect.DeepEqual(got.classes[0], []int{0, 1}) || !reflect.DeepEqual(got.classes[1], []int{3, 4}) {
		t.Errorf("classes = %v", got.classes)
	}
}

// brute-force g3: try removing every subset is exponential; instead
// compute via definition (per X-class keep the largest rhs subgroup).
func bruteG3(lhs, rhs []string) float64 {
	groups := map[string]map[string]int{}
	for i := range lhs {
		g := groups[lhs[i]]
		if g == nil {
			g = map[string]int{}
			groups[lhs[i]] = g
		}
		g[rhs[i]]++
	}
	kept := 0
	for _, g := range groups {
		best := 0
		for _, n := range g {
			if n > best {
				best = n
			}
		}
		kept += best
	}
	return float64(len(lhs)-kept) / float64(len(lhs))
}

func TestFDErrorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(30)
		lhs := make([]string, n)
		rhs := make([]string, n)
		for i := range lhs {
			lhs[i] = strconv.Itoa(rng.Intn(5))
			rhs[i] = strconv.Itoa(rng.Intn(4))
		}
		p := NewPartition(lhs)
		rhsIDs := classIDs(NewPartition(rhs), n)
		got := p.FDError(rhsIDs)
		want := bruteG3(lhs, rhs)
		if got != want {
			t.Fatalf("FDError = %v, want %v (lhs=%v rhs=%v)", got, want, lhs, rhs)
		}
	}
}

func TestDiscoverExactFDs(t *testing.T) {
	tbl := table.MustNew("t",
		col("City", "Paris", "Lyon", "Paris", "Nice", "Lyon"),
		col("Country", "France", "France", "France", "France", "France"),
		col("Mayor", "a", "b", "a", "c", "b"),
	)
	fds := Discover(tbl, Options{MaxLhs: 1})
	// City→Country, City→Mayor, Mayor→City, Mayor→Country hold;
	// Country→ anything does not (constant lhs, varied rhs).
	want := map[string]bool{
		"City → Country (g3=0.0000)":  true,
		"City → Mayor (g3=0.0000)":    true,
		"Mayor → City (g3=0.0000)":    true,
		"Mayor → Country (g3=0.0000)": true,
	}
	if len(fds) != len(want) {
		t.Fatalf("fds = %v", describeAll(fds, tbl))
	}
	for _, fd := range fds {
		if !want[fd.Describe(tbl)] {
			t.Errorf("unexpected FD %s", fd.Describe(tbl))
		}
	}
}

func TestDiscoverApproximate(t *testing.T) {
	tbl := table.MustNew("t",
		col("City", "Paris", "Paris", "Paris", "Lyon", "Lyon", "Nice", "Oslo", "Rome", "Bern", "Kiev"),
		col("Country", "France", "France", "Italy", "France", "France", "France", "Norway", "Italy", "CH", "UA"),
	)
	if fds := Discover(tbl, Options{MaxLhs: 1}); len(fds) != 0 {
		t.Errorf("exact search should find nothing: %v", describeAll(fds, tbl))
	}
	fds := Discover(tbl, Options{MaxLhs: 1, MaxError: 0.1})
	if len(fds) != 1 {
		t.Fatalf("fds = %v", describeAll(fds, tbl))
	}
	if fds[0].Err != 0.1 || fds[0].Rhs != 1 {
		t.Errorf("fd = %+v", fds[0])
	}
}

func TestDiscoverMultiAttributeMinimal(t *testing.T) {
	// D is determined by (A,B) jointly but by neither alone; C is
	// determined by A alone, so A,B→C must be pruned as non-minimal.
	tbl := table.MustNew("t",
		col("A", "x", "x", "y", "y"),
		col("B", "1", "2", "1", "2"),
		col("C", "p", "p", "q", "q"),
		col("D", "m", "n", "o", "p"),
	)
	fds := Discover(tbl, Options{MaxLhs: 2})
	var sawJoint, sawNonMinimal bool
	for _, fd := range fds {
		if len(fd.Lhs) == 2 && fd.Rhs == 3 && fd.Lhs[0] == 0 && fd.Lhs[1] == 1 {
			sawJoint = true
		}
		if len(fd.Lhs) == 2 && fd.Rhs == 2 && containsInt(fd.Lhs, 0) {
			sawNonMinimal = true
		}
	}
	if !sawJoint {
		t.Errorf("A,B→D not found: %v", describeAll(fds, tbl))
	}
	if sawNonMinimal {
		t.Errorf("non-minimal superset of A→C reported: %v", describeAll(fds, tbl))
	}
	// B alone is a key over these 4 rows? B=(1,2,1,2) no. D unique → D→ everything.
	for _, fd := range fds {
		if len(fd.Lhs) == 1 && fd.Lhs[0] == 3 && fd.Err != 0 {
			t.Errorf("unique lhs must give exact FDs: %v", fd.Describe(tbl))
		}
	}
}

func TestDiscoverBounds(t *testing.T) {
	small := table.MustNew("t", col("A", "x"))
	if fds := Discover(small, Options{}); fds != nil {
		t.Errorf("single-column table: %v", fds)
	}
	wide := make([]*table.Column, 20)
	for i := range wide {
		wide[i] = col("c"+strconv.Itoa(i), "a", "b")
	}
	if fds := Discover(table.MustNew("w", wide...), Options{MaxColumns: 10}); fds != nil {
		t.Error("over-wide table should be skipped")
	}
}

func describeAll(fds []FD, t *table.Table) []string {
	out := make([]string, len(fds))
	for i, fd := range fds {
		out[i] = fd.Describe(t)
	}
	return out
}
