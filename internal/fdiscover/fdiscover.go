// Package fdiscover implements TANE-style discovery of exact and
// approximate functional dependencies [51], the substrate behind the
// "large literature on detecting approximate FD efficiently" the paper
// builds on (§1, §3.4): stripped partitions, partition intersection, the
// g3 approximation error (the minimum fraction of rows to remove for the
// FD to hold exactly), and a level-wise lattice search over
// multi-attribute left-hand sides with minimality pruning.
package fdiscover

import (
	"fmt"
	"sort"
	"strings"

	"github.com/unidetect/unidetect/internal/table"
)

// Partition is a stripped partition: the equivalence classes of rows
// sharing a value combination, keeping only classes with at least two
// rows (singletons carry no FD information).
type Partition struct {
	classes [][]int
	nRows   int
}

// NewPartition builds the stripped partition of one column.
func NewPartition(vals []string) *Partition {
	groups := map[string][]int{}
	for i, v := range vals {
		groups[v] = append(groups[v], i)
	}
	p := &Partition{nRows: len(vals)}
	for _, rows := range groups {
		if len(rows) > 1 {
			p.classes = append(p.classes, rows)
		}
	}
	p.normalize()
	return p
}

// normalize orders classes (and their rows) for deterministic output.
func (p *Partition) normalize() {
	for _, c := range p.classes {
		sort.Ints(c)
	}
	sort.Slice(p.classes, func(i, j int) bool { return p.classes[i][0] < p.classes[j][0] })
}

// NumClasses returns the number of (non-singleton) classes.
func (p *Partition) NumClasses() int { return len(p.classes) }

// Size returns the number of rows covered by non-singleton classes.
func (p *Partition) Size() int {
	n := 0
	for _, c := range p.classes {
		n += len(c)
	}
	return n
}

// KeyError returns g3 for X as a key: the fraction of rows that must be
// removed for X's values to be unique.
func (p *Partition) KeyError() float64 {
	if p.nRows == 0 {
		return 0
	}
	return float64(p.Size()-p.NumClasses()) / float64(p.nRows)
}

// Intersect returns the product partition π_{X∪Y} from π_X and π_Y,
// using TANE's probe-table algorithm (linear in the partitions' sizes).
func (p *Partition) Intersect(q *Partition) *Partition {
	probe := make(map[int]int, q.Size()) // row -> q-class id
	for id, c := range q.classes {
		for _, r := range c {
			probe[r] = id + 1 // 0 means singleton in q
		}
	}
	out := &Partition{nRows: p.nRows}
	for _, c := range p.classes {
		sub := map[int][]int{}
		for _, r := range c {
			if id := probe[r]; id > 0 {
				sub[id] = append(sub[id], r)
			}
		}
		for _, rows := range sub {
			if len(rows) > 1 {
				out.classes = append(out.classes, rows)
			}
		}
	}
	out.normalize()
	return out
}

// FDError returns g3(X→A): the minimum fraction of rows whose removal
// makes X determine A exactly, computed from π_X and the class id of
// each row in π_A (TANE's error formula: 1 - Σ_c max-subclass / ‖rows‖,
// restated over stripped partitions).
func (p *Partition) FDError(rhsClass []int) float64 {
	if p.nRows == 0 {
		return 0
	}
	removed := 0
	counts := map[int]int{}
	for _, c := range p.classes {
		clear(counts)
		maxSub := 1 // a singleton rhs value keeps one row
		for _, r := range c {
			id := rhsClass[r]
			if id == 0 {
				continue // unique rhs value: contributes a 1-subclass
			}
			counts[id]++
			if counts[id] > maxSub {
				maxSub = counts[id]
			}
		}
		removed += len(c) - maxSub
	}
	return float64(removed) / float64(p.nRows)
}

// FD is one discovered dependency.
type FD struct {
	// Lhs holds 0-based column indices, Rhs a single column index.
	Lhs []int
	Rhs int
	// Err is the g3 approximation error; 0 means the FD holds exactly.
	Err float64
}

// Describe renders the FD with column names.
func (f FD) Describe(t *table.Table) string {
	names := make([]string, len(f.Lhs))
	for i, c := range f.Lhs {
		names[i] = t.Columns[c].Name
	}
	return fmt.Sprintf("%s → %s (g3=%.4f)", strings.Join(names, ","), t.Columns[f.Rhs].Name, f.Err)
}

// Options bounds the search.
type Options struct {
	// MaxLhs is the largest left-hand-side size explored (default 2).
	MaxLhs int
	// MaxError admits approximate FDs with g3 up to this value
	// (default 0: exact only).
	MaxError float64
	// MaxColumns skips wider tables (default 16).
	MaxColumns int
	// MinRows skips shorter tables (default 2).
	MinRows int
}

func (o Options) withDefaults() Options {
	if o.MaxLhs <= 0 {
		o.MaxLhs = 2
	}
	if o.MaxColumns <= 0 {
		o.MaxColumns = 16
	}
	if o.MinRows <= 0 {
		o.MinRows = 2
	}
	return o
}

// Discover runs the level-wise search and returns the minimal exact and
// approximate FDs within the error budget, ordered by (lhs size, lhs,
// rhs). An FD is reported only if no subset of its lhs already determines
// the rhs within the budget (minimality).
func Discover(t *table.Table, opts Options) []FD {
	opts = opts.withDefaults()
	nCols := t.NumCols()
	if nCols < 2 || nCols > opts.MaxColumns || t.NumRows() < opts.MinRows {
		return nil
	}

	// Single-column partitions and per-row class ids for rhs checks.
	parts := make(map[string]*Partition, nCols)
	rhsClass := make([][]int, nCols)
	for c := 0; c < nCols; c++ {
		p := NewPartition(t.Columns[c].Values)
		parts[key([]int{c})] = p
		rhsClass[c] = classIDs(p, t.NumRows())
	}

	var out []FD
	// found[rhs] records minimal lhs sets already determining rhs.
	found := make([][][]int, nCols)

	level := make([][]int, 0, nCols)
	for c := 0; c < nCols; c++ {
		level = append(level, []int{c})
	}
	for size := 1; size <= opts.MaxLhs; size++ {
		for _, lhs := range level {
			p := parts[key(lhs)]
			for rhs := 0; rhs < nCols; rhs++ {
				if containsInt(lhs, rhs) || coveredBy(found[rhs], lhs) {
					continue
				}
				if e := p.FDError(rhsClass[rhs]); e <= opts.MaxError {
					out = append(out, FD{Lhs: append([]int(nil), lhs...), Rhs: rhs, Err: e})
					found[rhs] = append(found[rhs], append([]int(nil), lhs...))
				}
			}
		}
		if size == opts.MaxLhs {
			break
		}
		level = nextLevel(level, nCols, parts)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a.Lhs) != len(b.Lhs) {
			return len(a.Lhs) < len(b.Lhs)
		}
		for k := range a.Lhs {
			if a.Lhs[k] != b.Lhs[k] {
				return a.Lhs[k] < b.Lhs[k]
			}
		}
		return a.Rhs < b.Rhs
	})
	return out
}

// nextLevel generates the size+1 candidate lhs sets by prefix join (the
// apriori-style candidate generation of TANE), materializing their
// partitions by intersection.
func nextLevel(level [][]int, nCols int, parts map[string]*Partition) [][]int {
	var next [][]int
	for _, lhs := range level {
		last := lhs[len(lhs)-1]
		for c := last + 1; c < nCols; c++ {
			bigger := append(append([]int(nil), lhs...), c)
			p := parts[key(lhs)].Intersect(parts[key([]int{c})])
			parts[key(bigger)] = p
			next = append(next, bigger)
		}
	}
	return next
}

// classIDs maps each row to its 1-based class id in p (0 = singleton).
func classIDs(p *Partition, nRows int) []int {
	ids := make([]int, nRows)
	for id, c := range p.classes {
		for _, r := range c {
			ids[r] = id + 1
		}
	}
	return ids
}

func key(cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&b, "%d,", c)
	}
	return b.String()
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// coveredBy reports whether any already-found lhs is a subset of lhs.
func coveredBy(smaller [][]int, lhs []int) bool {
	for _, s := range smaller {
		if isSubset(s, lhs) {
			return true
		}
	}
	return false
}

func isSubset(sub, super []int) bool {
	for _, v := range sub {
		if !containsInt(super, v) {
			return false
		}
	}
	return true
}
