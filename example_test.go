package unidetect_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/unidetect/unidetect"
)

// ExampleTrain shows the end-to-end flow: train once on a background
// corpus, then scan tables. (Not verified for output: training a real
// model takes seconds; see examples/quickstart for a runnable program.)
func ExampleTrain() {
	background := unidetect.SyntheticCorpus(unidetect.WebProfile, 20000, 1)
	model, err := unidetect.Train(context.Background(), background, nil)
	if err != nil {
		log.Fatal(err)
	}
	tbl, _ := unidetect.ReadCSVFile("suppliers.csv")
	for _, f := range model.Detect(context.Background(), tbl) {
		fmt.Println(f)
	}
}

func ExampleReadCSV() {
	tbl, err := unidetect.ReadCSV("people", strings.NewReader("name,age\nada,36\nbob,41\n"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.NumCols(), tbl.NumRows(), tbl.Columns[0].Name)
	// Output: 2 2 name
}

func ExampleDiscoverFDs() {
	tbl, _ := unidetect.NewTable("offices",
		unidetect.NewColumn("City", []string{"Paris", "Lyon", "Paris", "Nice", "Lyon"}),
		unidetect.NewColumn("Country", []string{"France", "France", "France", "France", "France"}),
		unidetect.NewColumn("Head", []string{"a", "b", "a", "c", "b"}),
	)
	for _, fd := range unidetect.DiscoverFDs(tbl, unidetect.FDDiscoveryOptions{MaxLhs: 1}) {
		fmt.Printf("%s -> %s (g3=%.2f)\n", strings.Join(fd.Lhs, ","), fd.Rhs, fd.Error)
	}
	// Output:
	// City -> Country (g3=0.00)
	// City -> Head (g3=0.00)
	// Head -> City (g3=0.00)
	// Head -> Country (g3=0.00)
}

func ExampleSuggestRepairs() {
	tbl, _ := unidetect.NewTable("routes",
		unidetect.NewColumn("Num", []string{"736", "737", "738"}),
		unidetect.NewColumn("Name", []string{"Route 736", "Route 737", "Route 739"}),
	)
	finding := unidetect.Finding{
		Class:  unidetect.FDSynthesis,
		Table:  "routes",
		Column: "Num→Name",
		Rows:   []int{2},
	}
	for _, r := range unidetect.SuggestRepairs(tbl, finding) {
		fmt.Printf("%s[%d]: %q -> %q\n", r.Column, r.Row, r.Old, r.New)
	}
	// Output: Name[2]: "Route 739" -> "Route 738"
}
