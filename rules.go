package unidetect

import "github.com/unidetect/unidetect/internal/excelrules"

// RuleFinding is one violation of a curated error-checking rule.
type RuleFinding struct {
	// Rule names the rule that fired ("number-stored-as-text",
	// "two-digit-year", "stray-whitespace", "inconsistent-case",
	// "empty-in-dense-column").
	Rule   string
	Table  string
	Column string
	Row    int
	Value  string
	Detail string
}

// CheckRules runs the curated, Excel-style error-checking rules over a
// table (Figure 1 / Appendix B of the paper: the commercial software
// approach — a handful of manually authored, high-precision, low-recall
// rules). It needs no trained model and complements Detect: rules catch
// formatting pathologies (numbers stored as text, two-digit years, stray
// whitespace) that the statistical detectors do not target.
func CheckRules(t *Table) []RuleFinding {
	var out []RuleFinding
	for _, f := range excelrules.Check(t) {
		out = append(out, RuleFinding{
			Rule:   f.Rule,
			Table:  f.Table,
			Column: f.Column,
			Row:    f.Row,
			Value:  f.Value,
			Detail: f.Detail,
		})
	}
	return out
}
