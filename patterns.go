package unidetect

import (
	"context"

	"github.com/unidetect/unidetect/internal/autodetect"
)

// PatternFinding is a detected pattern incompatibility (the Auto-Detect
// class of errors, shown in Appendix C to be an instance of Uni-Detect's
// LR test): a column mixes two value patterns that almost never
// legitimately co-occur, e.g. "2001-Jan-01" among "2001-01-01" dates.
type PatternFinding struct {
	Table  string
	Column string
	// MajorityPattern and MinorityPattern are generalized character-class
	// patterns (digits→d, letters→l, runs collapsed).
	MajorityPattern, MinorityPattern string
	// Rows flag the cells bearing the minority pattern.
	Rows   []int
	Values []string
	// Score is the smoothed likelihood ratio exp(PMI); smaller means the
	// patterns are more incompatible.
	Score float64
}

// PatternModel holds corpus pattern-co-occurrence statistics.
type PatternModel struct {
	m *autodetect.Model
}

// TrainPatterns learns pattern statistics from a background corpus.
func TrainPatterns(background []*Table) *PatternModel {
	return &PatternModel{m: autodetect.Train(background)}
}

// Detect flags pattern-incompatible cells in a table; alpha <= 0 uses the
// default significance level 0.05.
func (pm *PatternModel) Detect(ctx context.Context, t *Table, alpha float64) []PatternFinding {
	if alpha <= 0 {
		alpha = 0.05
	}
	var out []PatternFinding
	for _, f := range pm.m.Detect(t, alpha) {
		out = append(out, PatternFinding{
			Table:           t.Name,
			Column:          f.Column,
			MajorityPattern: f.PatternA,
			MinorityPattern: f.PatternB,
			Rows:            f.Rows,
			Values:          f.Values,
			Score:           f.LR,
		})
	}
	return out
}
